#include "os/kernel.h"

#include <algorithm>

#include "os/machine.h"
#include "os/network.h"

namespace ditto::os {

Kernel::Kernel(Machine &machine) : machine_(machine)
{
}

sim::Time
Kernel::sliceOffset(const StepCtx &ctx) const
{
    return machine_.cyclesToTime(ctx.cyclesUsed);
}

void
Kernel::runPath(StepCtx &ctx, Thread &t, KernelPath path,
                std::uint64_t iterations)
{
    hw::ExecStats scratch;
    const double cycles = ctx.core.run(
        machine_.kernelCode().image(),
        machine_.kernelCode().blockOf(path), iterations,
        t.execContext(), scratch, /*kernelMode=*/true);
    ctx.cyclesUsed += cycles;
    if (t.statsSink())
        t.statsSink()->add(scratch);
}

void
Kernel::chargeCopy(StepCtx &ctx, Thread &t, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    // The copy block covers ~256B per iteration.
    const std::uint64_t iters = std::max<std::uint64_t>(
        1, (bytes + 255) / 256);
    runPath(ctx, t, KernelPath::CopyChunk, iters);
}

SysResult
Kernel::sysSocketRead(StepCtx &ctx, Thread &t, Socket &sock,
                      Message &out)
{
    runPath(ctx, t, KernelPath::SyscallEntry);
    if (!sock.readable()) {
        sock.addWaiter(&t);
        return SysResult::WouldBlock;
    }
    ++counts_.read;
    runPath(ctx, t, KernelPath::TcpRx);
    out = sock.pop();
    chargeCopy(ctx, t, out.bytes);
    return SysResult::Ok;
}

SysResult
Kernel::sysSocketTryRead(StepCtx &ctx, Thread &t, Socket &sock,
                         Message &out)
{
    runPath(ctx, t, KernelPath::SyscallEntry);
    if (!sock.readable())
        return SysResult::WouldBlock;
    ++counts_.read;
    runPath(ctx, t, KernelPath::TcpRx);
    out = sock.pop();
    chargeCopy(ctx, t, out.bytes);
    return SysResult::Ok;
}

void
Kernel::sysSocketWrite(StepCtx &ctx, Thread &t, Socket &sock,
                       Message msg)
{
    ++counts_.write;
    runPath(ctx, t, KernelPath::SyscallEntry);
    runPath(ctx, t, KernelPath::TcpTx);
    chargeCopy(ctx, t, msg.bytes);
    sock.txBytes += msg.bytes;
    if (network_)
        network_->send(sock, std::move(msg), sliceOffset(ctx));
}

SysResult
Kernel::sysEpollWait(StepCtx &ctx, Thread &t, Epoll &ep,
                     std::vector<Socket *> &ready)
{
    ++counts_.epollWait;
    runPath(ctx, t, KernelPath::SyscallEntry);
    if (ep.anyReady()) {
        runPath(ctx, t, KernelPath::EpollWait);
        ready = ep.readySockets();
        return SysResult::Ok;
    }
    ep.addWaiter(&t);
    return SysResult::WouldBlock;
}

SysResult
Kernel::sysPread(StepCtx &ctx, Thread &t, std::uint32_t fileId,
                 std::uint64_t offset, std::uint64_t bytes,
                 std::uint64_t &diskBytesOut)
{
    diskBytesOut = 0;
    ++counts_.pread;
    runPath(ctx, t, KernelPath::SyscallEntry);
    runPath(ctx, t, KernelPath::VfsRead);
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, (bytes + kPageBytes - 1) / kPageBytes);
    runPath(ctx, t, KernelPath::PageCacheLookup, pages);

    const std::uint64_t missing =
        machine_.pageCache().access(fileId, offset, bytes);
    if (missing == 0) {
        chargeCopy(ctx, t, bytes);
        return SysResult::Ok;
    }

    // Submit the disk read for the missing pages when the syscall
    // logically executes; the completion wakes the thread.
    runPath(ctx, t, KernelPath::BlockIo);
    const std::uint64_t diskBytes = missing * kPageBytes;
    diskBytesOut = diskBytes;
    Thread *thread = &t;
    Machine *m = &machine_;
    machine_.events().scheduleAfter(sliceOffset(ctx),
                                    [m, thread, diskBytes] {
        m->disk().submit(diskBytes, false, [m, thread] {
            m->scheduler().wake(thread);
        });
    });
    return SysResult::WouldBlock;
}

void
Kernel::sysPreadFinish(StepCtx &ctx, Thread &t, std::uint64_t bytes)
{
    runPath(ctx, t, KernelPath::BlockIo);
    chargeCopy(ctx, t, bytes);
}

void
Kernel::sysPwrite(StepCtx &ctx, Thread &t, std::uint32_t fileId,
                  std::uint64_t offset, std::uint64_t bytes)
{
    ++counts_.pwrite;
    runPath(ctx, t, KernelPath::SyscallEntry);
    runPath(ctx, t, KernelPath::VfsWrite);
    chargeCopy(ctx, t, bytes);
    machine_.pageCache().access(fileId, offset, bytes);
    // Write-back happens asynchronously; charge the device, not the
    // thread.
    machine_.events().scheduleAfter(
        sliceOffset(ctx) + sim::milliseconds(30),
        [m = &machine_, bytes] {
            m->disk().submit(bytes, true, nullptr);
        });
}

SysResult
Kernel::sysFutexWait(StepCtx &ctx, Thread &t, WaitQueue &q)
{
    ++counts_.futex;
    runPath(ctx, t, KernelPath::Futex);
    q.addWaiter(&t);
    return SysResult::WouldBlock;
}

void
Kernel::sysFutexWake(StepCtx &ctx, Thread &t, WaitQueue &q, unsigned n)
{
    ++counts_.futex;
    runPath(ctx, t, KernelPath::Futex);
    if (q.hasWaiters())
        runPath(ctx, t, KernelPath::EpollWake);
    q.wake(n);
}

SysResult
Kernel::sysNanosleep(StepCtx &ctx, Thread &t, sim::Time duration)
{
    ++counts_.nanosleep;
    runPath(ctx, t, KernelPath::SyscallEntry);
    Thread *thread = &t;
    Machine *m = &machine_;
    machine_.events().scheduleAfter(sliceOffset(ctx) + duration,
                                    [m, thread] {
        m->scheduler().wake(thread);
    });
    return SysResult::WouldBlock;
}

void
Kernel::sysClone(StepCtx &ctx, Thread &t)
{
    ++counts_.clone;
    runPath(ctx, t, KernelPath::Clone);
}

} // namespace ditto::os
