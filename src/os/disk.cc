#include "os/disk.h"

#include <cmath>
#include <memory>

namespace ditto::os {

DiskProfile
DiskProfile::forKind(hw::DiskKind kind)
{
    DiskProfile p{};
    switch (kind) {
      case hw::DiskKind::Ssd:
        // NVMe/SATA SSD: ~80us random read, ~500 MB/s, deep queue.
        p.randomAccess = sim::microseconds(120);
        p.bandwidthBytesPerNs = 500e6 / 1e9;
        p.channels = 2;
        p.latencyJitter = 0.25;
        break;
      case hw::DiskKind::Hdd:
        // 7200rpm HDD: ~6ms seek+rotate, ~150 MB/s, one actuator.
        p.randomAccess = sim::milliseconds(6);
        p.bandwidthBytesPerNs = 150e6 / 1e9;
        p.channels = 1;
        p.latencyJitter = 0.35;
        break;
    }
    return p;
}

Disk::Disk(sim::EventQueue &events, hw::DiskKind kind, std::uint64_t seed)
    : events_(events), kind_(kind), profile_(DiskProfile::forKind(kind)),
      rng_(seed)
{
}

void
Disk::submit(std::uint64_t bytes, bool isWrite, std::function<void()> done)
{
    ++requests_;
    if (isWrite)
        writeBytes_ += bytes;
    else
        readBytes_ += bytes;

    const double access = static_cast<double>(profile_.randomAccess) *
        rng_.logNormal(0.0, profile_.latencyJitter);
    const double transfer =
        static_cast<double>(bytes) / profile_.bandwidthBytesPerNs;
    const auto service =
        static_cast<sim::Time>((access + transfer) * slowdown_);

    queue_.push_back(Pending{service, std::move(done)});
    pump();
}

void
Disk::pump()
{
    while (inFlight_ < profile_.channels && !queue_.empty()) {
        Pending req = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        auto done = std::make_shared<std::function<void()>>(
            std::move(req.done));
        events_.scheduleAfter(req.serviceTime, [this, done] {
            --inFlight_;
            if (*done)
                (*done)();
            pump();
        });
    }
}

void
Disk::resetStats()
{
    readBytes_ = 0;
    writeBytes_ = 0;
    requests_ = 0;
}

} // namespace ditto::os
