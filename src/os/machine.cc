#include "os/machine.h"

#include <bit>

#include "os/kernel.h"

namespace ditto::os {

namespace {

/** User address-space layout: per-service regions. */
constexpr std::uint64_t kUserTextBase = 0x0000'4000'0000ull;
constexpr std::uint64_t kUserTextStride = 0x0000'0400'0000ull;  // 64MB
constexpr std::uint64_t kUserDataBase = 0x0100'0000'0000ull;
constexpr std::uint64_t kUserDataStride = 0x0010'0000'0000ull;  // 64GB

/** Fraction of RAM the page cache may use. */
constexpr double kPageCacheFraction = 0.6;

} // namespace

Machine::Machine(std::string name, const hw::PlatformSpec &spec,
                 sim::EventQueue &events, std::uint64_t seed)
    : name_(std::move(name)), spec_(spec), events_(events),
      smtWays_(spec.smtEnabled ? 2 : 1)
{
    llc_ = std::make_unique<hw::Cache>(spec_.llcBytes, spec_.llcWays);

    const unsigned physCores = spec_.totalCores();
    for (unsigned p = 0; p < physCores; ++p) {
        hierarchies_.push_back(std::make_unique<hw::CacheHierarchy>(
            spec_.l1iBytes, spec_.l1iWays, spec_.l1dBytes,
            spec_.l1dWays, spec_.l2Bytes, spec_.l2Ways, llc_.get(),
            spec_.prefetchEnabled));
        for (unsigned way = 0; way < smtWays_; ++way) {
            const auto id = static_cast<unsigned>(cores_.size());
            cores_.push_back(std::make_unique<hw::CpuCore>(
                id, spec_, *hierarchies_.back(), this));
        }
    }

    kernelCode_ = std::make_unique<KernelCode>(seed ^ 0x6b65726eull);
    scheduler_ = std::make_unique<Scheduler>(*this, events_);
    kernel_ = std::make_unique<Kernel>(*this);
    disk_ = std::make_unique<Disk>(events_, spec_.disk, seed ^ 0xd15cull);
    pageCache_ = std::make_unique<PageCache>(static_cast<std::uint64_t>(
        static_cast<double>(spec_.ramBytes) * kPageCacheFraction));
    nic_.bytesPerNs = spec_.nicGbps / 8.0;  // Gb/s -> bytes/ns
}

Machine::~Machine() = default;

void
Machine::sharedWrite(unsigned coreId, std::uint64_t addr)
{
    // Write-invalidate: drop the line from the private caches of
    // every other hierarchy that holds it. The sharers directory
    // keeps the fan-out proportional to the actual sharer count.
    const unsigned writer = coreId / smtWays_;
    const std::uint64_t line = addr / hw::kLineBytes;
    std::uint64_t &mask = sharers_.ref(line);
    std::uint64_t others = mask & ~(std::uint64_t{1} << writer);
    while (others) {
        const unsigned h = static_cast<unsigned>(
            std::countr_zero(others));
        others &= others - 1;
        if (h < hierarchies_.size())
            hierarchies_[h]->invalidateData(addr);
    }
    mask = std::uint64_t{1} << writer;
}

void
Machine::sharedRead(unsigned coreId, std::uint64_t addr)
{
    const unsigned reader = coreId / smtWays_;
    const std::uint64_t line = addr / hw::kLineBytes;
    sharers_.ref(line) |= std::uint64_t{1} << reader;
}

void
Machine::setDown(bool down)
{
    down_ = down;
    scheduler_->setFrozen(down);
}

Socket *
Machine::createSocket()
{
    auto sock = std::make_unique<Socket>(nextSocketId_++);
    sock->machine = this;
    sock->wakeFn = [this](Thread *t) { scheduler_->wake(t); };
    sockets_.push_back(std::move(sock));
    return sockets_.back().get();
}

Epoll *
Machine::createEpoll()
{
    auto ep = std::make_unique<Epoll>(nextSocketId_++);
    ep->wakeFn = [this](Thread *t) { scheduler_->wake(t); };
    epolls_.push_back(std::move(ep));
    return epolls_.back().get();
}

WaitQueue *
Machine::createWaitQueue()
{
    auto q = std::make_unique<WaitQueue>();
    q->wakeFn = [this](Thread *t) { scheduler_->wake(t); };
    waitQueues_.push_back(std::move(q));
    return waitQueues_.back().get();
}

Machine::AddressRegion
Machine::allocRegion()
{
    AddressRegion region;
    region.textBase = kUserTextBase + nextRegion_ * kUserTextStride;
    region.dataBase = kUserDataBase + nextRegion_ * kUserDataStride;
    ++nextRegion_;
    return region;
}

} // namespace ditto::os
