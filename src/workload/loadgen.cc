#include "workload/loadgen.h"

namespace ditto::workload {

LoadGen::LoadGen(app::Deployment &dep, app::ServiceInstance &target,
                 LoadSpec spec, std::uint64_t seed)
    : dep_(dep), target_(target), spec_(std::move(spec)), rng_(seed)
{
    for (std::size_t i = 0; i < spec_.endpoints.size(); ++i)
        endpointPick_.add(static_cast<std::int64_t>(i),
                          spec_.endpoints[i].weight);

    conns_.resize(std::max(1u, spec_.connections));
    std::uint64_t sockId = 0xc11e0000;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
        conns_[i].client = std::make_unique<os::Socket>(sockId++);
        conns_[i].client->machine = nullptr;  // external client
        conns_[i].server = target_.openConnection();
        os::Network::connect(*conns_[i].client, *conns_[i].server);
        const std::size_t idx = i;
        conns_[i].client->onDeliver = [this, idx](const os::Message &m) {
            onResponse(idx, m);
        };
    }
}

LoadGen::~LoadGen() = default;

void
LoadGen::start()
{
    if (running_)
        return;
    running_ = true;
    measureStart_ = dep_.events().now();
    if (spec_.openLoop) {
        scheduleNextOpen();
    } else {
        for (std::size_t i = 0; i < conns_.size(); ++i)
            scheduleNextClosed(i);
    }
}

void
LoadGen::stop()
{
    running_ = false;
}

void
LoadGen::beginMeasure()
{
    latency_.reset();
    measureStart_ = dep_.events().now();
    measuredCompleted_ = 0;
    measuredOk_ = 0;
}

double
LoadGen::achievedQps() const
{
    const double secs =
        sim::toSeconds(dep_.events().now() - measureStart_);
    return secs > 0 ?
        static_cast<double>(measuredCompleted_) / secs : 0.0;
}

double
LoadGen::goodput() const
{
    const double secs =
        sim::toSeconds(dep_.events().now() - measureStart_);
    return secs > 0 ? static_cast<double>(measuredOk_) / secs : 0.0;
}

void
LoadGen::setQps(double qps)
{
    spec_.qps = qps;
    if (!running_ || !spec_.openLoop)
        return;
    // Drop the gap sampled at the old rate and resample at the new
    // one -- exponential memorylessness makes this bias-free.
    if (openArrival_ != 0) {
        dep_.events().cancel(openArrival_);
        openArrival_ = 0;
    }
    scheduleNextOpen();
}

void
LoadGen::scheduleNextOpen()
{
    if (!running_ || spec_.qps <= 0)
        return;
    const double gapNs = rng_.exponential(1e9 / spec_.qps);
    openArrival_ = dep_.events().scheduleAfter(
        static_cast<sim::Time>(gapNs), [this] {
            openArrival_ = 0;
            if (!running_)
                return;
            sendOn(rrConn_++ % conns_.size());
            scheduleNextOpen();
        });
}

void
LoadGen::scheduleNextClosed(std::size_t connIdx)
{
    if (!running_ || spec_.qps <= 0)
        return;
    // Per-connection rate-limited arrivals (YCSB target throughput).
    const double perConnRate =
        spec_.qps / static_cast<double>(conns_.size());
    const double gapNs = rng_.exponential(1e9 / perConnRate);
    dep_.events().scheduleAfter(
        static_cast<sim::Time>(gapNs), [this, connIdx] {
            if (!running_)
                return;
            if (conns_[connIdx].outstanding()) {
                // Still waiting (saturated): send immediately after
                // the response arrives instead (closed loop).
                return;
            }
            sendOn(connIdx);
        });
}

void
LoadGen::sendOn(std::size_t connIdx)
{
    Conn &conn = conns_[connIdx];
    const auto pick = static_cast<std::size_t>(
        endpointPick_.sample(rng_));
    const EndpointLoad &ep = spec_.endpoints[pick];
    const std::uint32_t bytes = ep.reqBytesMin >= ep.reqBytesMax
        ? ep.reqBytesMin
        : static_cast<std::uint32_t>(rng_.uniformInt(
              static_cast<std::int64_t>(ep.reqBytesMin),
              static_cast<std::int64_t>(ep.reqBytesMax)));

    os::Message req;
    req.kind = os::MsgKind::Request;
    req.bytes = bytes;
    req.endpoint = ep.endpoint;
    req.tag = nextTrace_;
    req.traceId = nextTrace_++;
    req.sendTime = dep_.events().now();
    if (spec_.propagateDeadline && spec_.timeout > 0)
        req.deadline = req.sendTime + spec_.timeout;
    const std::uint64_t tag = req.tag;
    sim::EventId timer = 0;
    if (spec_.timeout > 0) {
        timer = dep_.events().scheduleAfter(
            spec_.timeout,
            [this, connIdx, tag] { onTimeout(connIdx, tag); });
    }
    conn.pending.emplace(tag, timer);
    ++sent_;
    dep_.network().send(*conn.client, std::move(req));
}

void
LoadGen::onResponse(std::size_t connIdx, const os::Message &resp)
{
    Conn &conn = conns_[connIdx];
    const sim::EventId *timer = conn.pending.find(resp.tag);
    if (timer == nullptr) {
        ++lateResponses_;  // reply to a request that already timed out
        return;
    }
    if (*timer != 0)
        dep_.events().cancel(*timer);
    conn.pending.erase(resp.tag);
    ++completed_;
    ++measuredCompleted_;
    switch (resp.status) {
      case os::MsgStatus::Ok:
        ++completedOk_;
        ++measuredOk_;
        break;
      case os::MsgStatus::Error:
        ++completedError_;
        break;
      case os::MsgStatus::Shed:
        ++completedShed_;
        break;
    }
    const sim::Time now = dep_.events().now();
    latency_.record(now > resp.sendTime ? now - resp.sendTime : 0);
    if (!spec_.openLoop)
        scheduleNextClosed(connIdx);
}

void
LoadGen::onTimeout(std::size_t connIdx, std::uint64_t tag)
{
    Conn &conn = conns_[connIdx];
    if (!conn.pending.erase(tag))
        return;
    ++timedOut_;
    if (spec_.cancelOnTimeout) {
        os::Message cancel;
        cancel.kind = os::MsgKind::Cancel;
        cancel.bytes = os::kCancelMsgBytes;
        cancel.tag = tag;
        cancel.traceId = tag;
        cancel.sendTime = dep_.events().now();
        ++cancelsSent_;
        dep_.network().send(*conn.client, std::move(cancel));
    }
    // Closed loop: free the connection so load keeps flowing.
    if (!spec_.openLoop)
        scheduleNextClosed(connIdx);
}

} // namespace ditto::workload
