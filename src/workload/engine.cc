#include "workload/engine.h"

#include <algorithm>
#include <cmath>

#include "trace/tracer.h"

namespace ditto::workload {

WorkloadEngine::WorkloadEngine(app::Deployment &dep,
                               app::ServiceInstance &target,
                               WorkloadSpec spec, std::uint64_t seed)
    : dep_(dep), target_(target), spec_(std::move(spec)), rng_(seed),
      arrivals_(spec_.arrivals, rng_.split())
{
    if (spec_.classes.empty())
        spec_.classes.push_back(EndpointClass{});
    if (spec_.retry.budgetRatio > 0) {
        retryBudget_.configure(spec_.retry.budgetRatio,
                               spec_.retry.budgetInitial,
                               spec_.retry.budgetCap);
    }
    for (std::size_t i = 0; i < spec_.classes.size(); ++i)
        classPick_.add(static_cast<std::int64_t>(i),
                       spec_.classes[i].weight);
    classes_.resize(spec_.classes.size());

    // Parameterize the think log-normal so its *mean* is meanThink:
    // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    const double meanNs = std::max(
        1.0, static_cast<double>(spec_.session.meanThink));
    thinkMu_ = std::log(meanNs) -
        spec_.session.thinkSigma * spec_.session.thinkSigma / 2.0;

    conns_.resize(std::max(1u, spec_.connections));
    std::uint64_t sockId = 0xe6e00000;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
        conns_[i].client = std::make_unique<os::Socket>(sockId++);
        conns_[i].client->machine = nullptr; // external client
        conns_[i].server = target_.openConnection();
        os::Network::connect(*conns_[i].client, *conns_[i].server);
        const std::size_t idx = i;
        conns_[i].client->onDeliver = [this, idx](const os::Message &m) {
            onResponse(idx, m);
        };
    }
}

WorkloadEngine::~WorkloadEngine() = default;

void
WorkloadEngine::start()
{
    if (running_)
        return;
    running_ = true;
    measureStart_ = dep_.events().now();
    scheduleNextArrival();
}

void
WorkloadEngine::stop()
{
    if (!running_)
        return;
    running_ = false;
    // Sessions mid-think log out now; sessions with a call in flight
    // log out when it settles (continueSession checks running_).
    std::vector<std::uint64_t> idle;
    for (const auto &e : sessions_.entries())
        if (e.value.thinkTimer != 0)
            idle.push_back(e.tag);
    for (const std::uint64_t id : idle) {
        Session *s = sessions_.find(id);
        if (s != nullptr && s->thinkTimer != 0) {
            dep_.events().cancel(s->thinkTimer);
            s->thinkTimer = 0;
        }
        endSession(id);
    }
}

void
WorkloadEngine::beginMeasure()
{
    latency_.reset();
    measureStart_ = dep_.events().now();
    measuredCompleted_ = 0;
    measuredOk_ = 0;
    for (ClassState &cs : classes_) {
        cs.mSent = 0;
        cs.mSettled = 0;
        cs.mOkInDeadline = 0;
        cs.mViolations = 0;
        cs.latency.reset();
    }
}

void
WorkloadEngine::setSessionsPerSec(double rate)
{
    spec_.sessionsPerSec = rate;
    // The arrival loop re-reads the spec at every draw, and draws are
    // bounded by the shape's refresh horizon, so the new rate takes
    // effect at the next checkpoint without rescheduling here.
}

std::uint64_t
WorkloadEngine::inFlight() const
{
    std::uint64_t n = 0;
    for (const Conn &c : conns_)
        n += c.pending.size();
    return n;
}

double
WorkloadEngine::achievedQps() const
{
    const double secs =
        sim::toSeconds(dep_.events().now() - measureStart_);
    return secs > 0
        ? static_cast<double>(measuredCompleted_) / secs : 0.0;
}

double
WorkloadEngine::goodput() const
{
    const double secs =
        sim::toSeconds(dep_.events().now() - measureStart_);
    return secs > 0 ? static_cast<double>(measuredOk_) / secs : 0.0;
}

std::uint64_t
WorkloadEngine::classSent(std::size_t i) const
{
    return classes_[i].sent;
}

std::uint64_t
WorkloadEngine::classOkInDeadline(std::size_t i) const
{
    return classes_[i].okInDeadline;
}

std::uint64_t
WorkloadEngine::classViolations(std::size_t i) const
{
    return classes_[i].violations;
}

SloReport
WorkloadEngine::sloReport() const
{
    SloReport report;
    const double secs =
        sim::toSeconds(dep_.events().now() - measureStart_);
    std::uint64_t totalSent = 0;
    std::uint64_t totalGood = 0;
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        const ClassState &cs = classes_[i];
        const EndpointClass &ec = spec_.classes[i];
        SloClassReport row;
        row.name = ec.name;
        row.endpoint = ec.endpoint;
        row.slo = ec.slo;
        row.sent = cs.mSent;
        row.settled = cs.mSettled;
        row.okInDeadline = cs.mOkInDeadline;
        row.violations = cs.mViolations;
        row.offeredQps = secs > 0
            ? static_cast<double>(cs.mSent) / secs : 0.0;
        row.goodputQps = secs > 0
            ? static_cast<double>(cs.mOkInDeadline) / secs : 0.0;
        row.violationRate = cs.mSettled > 0
            ? static_cast<double>(cs.mViolations) /
                static_cast<double>(cs.mSettled)
            : 0.0;
        row.latencyAtTargetNs =
            cs.latency.percentile(ec.slo.targetPercentile);
        row.met = cs.mSettled > 0 && cs.mViolations == 0
            ? true
            : (cs.latency.count() > 0 &&
               row.latencyAtTargetNs <= ec.slo.deadline &&
               row.violationRate <= 1.0 - ec.slo.targetPercentile);
        totalSent += cs.mSent;
        totalGood += cs.mOkInDeadline;
        report.classes.push_back(std::move(row));
    }
    report.offeredQps = secs > 0
        ? static_cast<double>(totalSent) / secs : 0.0;
    report.goodputQps = secs > 0
        ? static_cast<double>(totalGood) / secs : 0.0;
    return report;
}

void
WorkloadEngine::scheduleNextArrival()
{
    if (!running_)
        return;
    const sim::Time now = dep_.events().now();
    const double rate =
        spec_.sessionsPerSec * spec_.shape.factorAt(now);
    const ArrivalProcess::Draw d =
        arrivals_.next(rate, now, spec_.shape.refreshHorizon(now));
    dep_.events().scheduleAfter(
        d.gap, [this, arrival = d.arrival] {
            if (!running_)
                return;
            if (arrival)
                startSession();
            scheduleNextArrival();
        });
}

void
WorkloadEngine::startSession()
{
    const std::uint64_t id = nextSession_++;
    Session s;
    s.conn = static_cast<std::size_t>(id % conns_.size());
    s.callsLeft = static_cast<unsigned>(rng_.uniformInt(
        static_cast<std::int64_t>(spec_.session.minCalls),
        static_cast<std::int64_t>(std::max(spec_.session.minCalls,
                                           spec_.session.maxCalls))));
    s.startTime = dep_.events().now();
    if (spec_.traceSessions) {
        const std::uint64_t tid = nextTrace_++;
        if (dep_.tracer().sampled(tid)) {
            s.traceId = tid;
            s.rootSpan = dep_.tracer().newSpanId();
        }
    }
    ++sessionsStarted_;
    sessions_.emplace(id, std::move(s));
    // Login fires the first call immediately; thinks come after.
    sendCall(id);
}

void
WorkloadEngine::scheduleNextCall(std::uint64_t sessionId)
{
    Session *s = sessions_.find(sessionId);
    if (s == nullptr)
        return;
    const double thinkNs =
        rng_.logNormal(thinkMu_, spec_.session.thinkSigma);
    s->thinkTimer = dep_.events().scheduleAfter(
        static_cast<sim::Time>(std::max(1.0, thinkNs)),
        [this, sessionId] {
            Session *sp = sessions_.find(sessionId);
            if (sp == nullptr)
                return;
            sp->thinkTimer = 0;
            if (!running_) {
                endSession(sessionId);
                return;
            }
            sendCall(sessionId);
        });
}

std::uint32_t
WorkloadEngine::pickClass(Session &s)
{
    if (s.hasLast && rng_.bernoulli(spec_.session.endpointAffinity))
        return s.lastClass;
    return static_cast<std::uint32_t>(classPick_.sample(rng_));
}

void
WorkloadEngine::sendCall(std::uint64_t sessionId)
{
    Session *s = sessions_.find(sessionId);
    if (s == nullptr)
        return;
    const std::uint32_t cls = pickClass(*s);
    s->lastClass = cls;
    s->hasLast = true;
    const EndpointClass &ec = spec_.classes[cls];
    const std::uint32_t bytes = ec.reqBytesMin >= ec.reqBytesMax
        ? ec.reqBytesMin
        : static_cast<std::uint32_t>(rng_.uniformInt(
              static_cast<std::int64_t>(ec.reqBytesMin),
              static_cast<std::int64_t>(ec.reqBytesMax)));
    retryBudget_.onFresh();
    sendAttempt(sessionId, cls, bytes, /*attempt=*/1);
}

void
WorkloadEngine::sendAttempt(std::uint64_t sessionId,
                            std::uint32_t cls, std::uint32_t bytes,
                            unsigned attempt)
{
    Session *s = sessions_.find(sessionId);
    if (s == nullptr)
        return;
    const EndpointClass &ec = spec_.classes[cls];
    const std::size_t connIdx = s->conn;
    Conn &conn = conns_[connIdx];

    os::Message req;
    req.kind = os::MsgKind::Request;
    req.bytes = bytes;
    req.endpoint = ec.endpoint;
    req.tag = nextTag_++;
    req.traceId = s->traceId != 0 ? s->traceId : nextTrace_++;
    if (s->rootSpan != 0)
        req.parentSpan = s->rootSpan;
    req.sendTime = dep_.events().now();
    if (spec_.propagateDeadline && spec_.timeout > 0)
        req.deadline = req.sendTime + spec_.timeout;
    req.priority = ec.priority;

    Pending p;
    p.session = sessionId;
    p.cls = cls;
    p.sendTime = req.sendTime;
    p.attempt = attempt;
    p.bytes = bytes;
    const std::uint64_t tag = req.tag;
    if (spec_.timeout > 0) {
        p.timer = dep_.events().scheduleAfter(
            spec_.timeout,
            [this, connIdx, tag] { onTimeout(connIdx, tag); });
    }
    conn.pending.emplace(tag, p);
    ++sent_;
    ClassState &cs = classes_[cls];
    ++cs.sent;
    if (req.sendTime >= measureStart_)
        ++cs.mSent;
    dep_.network().send(*conn.client, std::move(req));
}

bool
WorkloadEngine::maybeRetry(const Pending &p, bool fromShed)
{
    if (spec_.retry.maxAttempts <= 1 ||
        p.attempt >= spec_.retry.maxAttempts)
        return false;
    if (fromShed && !spec_.retry.retryOnShed)
        return false;
    if (!running_ || sessions_.find(p.session) == nullptr)
        return false;
    // The budget token is withdrawn only once every cheaper gate has
    // passed, so a disabled-retry config never touches the bucket.
    if (!retryBudget_.allowWithdraw()) {
        ++retriesSuppressed_;
        return false;
    }
    ++retriesSent_;
    dep_.events().scheduleAfter(
        std::max<sim::Time>(1, spec_.retry.backoff),
        [this, sessionId = p.session, cls = p.cls, bytes = p.bytes,
         attempt = p.attempt + 1] {
            if (sessions_.find(sessionId) == nullptr)
                return;
            if (!running_) {
                // Engine stopped during the backoff: the call ends
                // here (every attempt already settled) and the
                // session logs out through the normal path.
                continueSession(sessionId);
                return;
            }
            sendAttempt(sessionId, cls, bytes, attempt);
        });
    return true;
}

void
WorkloadEngine::settleCall(const Pending &p, bool ok,
                           sim::Time latencyNs, bool wasTimeout)
{
    ClassState &cs = classes_[p.cls];
    const EndpointClass &ec = spec_.classes[p.cls];
    ++cs.settled;
    const bool good =
        ok && !wasTimeout && latencyNs <= ec.slo.deadline;
    if (good)
        ++cs.okInDeadline;
    else
        ++cs.violations;
    if (p.sendTime >= measureStart_) {
        ++cs.mSettled;
        if (good)
            ++cs.mOkInDeadline;
        else
            ++cs.mViolations;
        // Timeouts carry no response latency; they show up in the
        // violation rate instead of skewing the percentile.
        if (!wasTimeout)
            cs.latency.record(latencyNs);
    }
}

void
WorkloadEngine::onResponse(std::size_t connIdx,
                           const os::Message &resp)
{
    Conn &conn = conns_[connIdx];
    Pending *found = conn.pending.find(resp.tag);
    if (found == nullptr) {
        ++lateResponses_; // reply to a call that already timed out
        return;
    }
    const Pending p = *found;
    if (p.timer != 0)
        dep_.events().cancel(p.timer);
    conn.pending.erase(resp.tag);
    ++completed_;
    ++measuredCompleted_;
    bool ok = false;
    switch (resp.status) {
      case os::MsgStatus::Ok:
        ++completedOk_;
        ++measuredOk_;
        ok = true;
        break;
      case os::MsgStatus::Error:
        ++completedError_;
        break;
      case os::MsgStatus::Shed:
        ++completedShed_;
        break;
    }
    const sim::Time now = dep_.events().now();
    const sim::Time lat =
        now > resp.sendTime ? now - resp.sendTime : 0;
    latency_.record(lat);
    settleCall(p, ok, lat, /*wasTimeout=*/false);
    if (resp.status == os::MsgStatus::Shed && maybeRetry(p, true))
        return; // the retry attempt carries the session forward
    continueSession(p.session);
}

void
WorkloadEngine::onTimeout(std::size_t connIdx, std::uint64_t tag)
{
    Conn &conn = conns_[connIdx];
    Pending *found = conn.pending.find(tag);
    if (found == nullptr)
        return;
    const Pending p = *found;
    conn.pending.erase(tag);
    ++timedOut_;
    settleCall(p, /*ok=*/false, spec_.timeout, /*wasTimeout=*/true);
    if (spec_.cancelOnTimeout) {
        os::Message cancel;
        cancel.kind = os::MsgKind::Cancel;
        cancel.bytes = os::kCancelMsgBytes;
        cancel.tag = tag;
        cancel.traceId = tag;
        cancel.sendTime = dep_.events().now();
        ++cancelsSent_;
        dep_.network().send(*conn.client, std::move(cancel));
    }
    if (maybeRetry(p, false))
        return; // the retry attempt carries the session forward
    continueSession(p.session);
}

void
WorkloadEngine::continueSession(std::uint64_t sessionId)
{
    Session *s = sessions_.find(sessionId);
    if (s == nullptr)
        return;
    if (s->callsLeft > 0)
        --s->callsLeft;
    if (s->callsLeft == 0 || !running_) {
        endSession(sessionId);
        return;
    }
    scheduleNextCall(sessionId);
}

void
WorkloadEngine::endSession(std::uint64_t sessionId)
{
    Session *s = sessions_.find(sessionId);
    if (s == nullptr)
        return;
    if (s->traceId != 0) {
        trace::Span span;
        span.traceId = s->traceId;
        span.spanId = s->rootSpan;
        span.parentSpanId = 0;
        span.service = "workload";
        span.endpoint =
            s->hasLast ? spec_.classes[s->lastClass].endpoint : 0;
        span.start = s->startTime;
        span.end = dep_.events().now();
        dep_.tracer().recordSpan(std::move(span));
    }
    ++sessionsFinished_;
    sessions_.erase(sessionId);
}

} // namespace ditto::workload
