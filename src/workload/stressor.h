/**
 * @file
 * Interference stressors (the stress-ng / iBench / iperf3 stand-ins
 * for the Fig. 10 study).
 *
 * A CacheStressor is a pinned, never-blocking thread that loops a
 * stress code block sized to thrash a target cache level; pinning it
 * to the SMT sibling of a service core contends for L1d/L2 (and
 * pipeline issue) exactly like stress-ng co-location. An LLC stressor
 * pinned to any core on the socket pressures the shared LLC. The
 * network stressor consumes NIC bandwidth like a competing iperf3.
 */

#ifndef DITTO_WORKLOAD_STRESSOR_H_
#define DITTO_WORKLOAD_STRESSOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "hw/code.h"
#include "os/machine.h"
#include "os/thread.h"

namespace ditto::workload {

/** What resource the stressor pressures. */
enum class StressKind : std::uint8_t
{
    Cpu,   //!< tight ALU loop (hyperthread contention only)
    L1d,   //!< thrashes a ~2x L1d working set
    L2,    //!< thrashes a ~2x L2 working set
    Llc,   //!< thrashes a ~LLC-sized working set
};

/**
 * A pinned busy thread running a stress block forever.
 */
class CacheStressor
{
  public:
    CacheStressor(os::Machine &machine, StressKind kind, int coreId,
                  std::uint64_t seed = 0x57e55);

    StressKind kind() const { return kind_; }

  private:
    class StressThread;

    os::Machine &machine_;
    StressKind kind_;
    std::unique_ptr<hw::CodeImage> image_;
    std::uint32_t blockId_ = 0;
};

/** Human-readable stressor name. */
std::string stressKindName(StressKind kind);

/**
 * iperf3-style bandwidth hog: consumes a fraction of the machine's
 * NIC bandwidth while alive.
 */
class NetStressor
{
  public:
    NetStressor(os::Machine &machine, double gbps);
    ~NetStressor();

  private:
    os::Machine &machine_;
    double bytesPerNs_;
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_STRESSOR_H_
