#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>

namespace ditto::workload {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Mmpp:
        return "mmpp";
      case ArrivalKind::Deterministic:
        return "deterministic";
    }
    return "?";
}

const char *
shapeKindName(ShapeKind kind)
{
    switch (kind) {
      case ShapeKind::Constant:
        return "steady";
      case ShapeKind::Diurnal:
        return "diurnal";
      case ShapeKind::Ramp:
        return "ramp";
      case ShapeKind::FlashCrowd:
        return "flash";
    }
    return "?";
}

double
RateCurve::factorAt(sim::Time now) const
{
    switch (kind) {
      case ShapeKind::Constant:
        return 1.0;
      case ShapeKind::Diurnal: {
        if (period == 0)
            return 1.0;
        const double phase = 2.0 * M_PI *
            (static_cast<double>(now % period) /
             static_cast<double>(period));
        return std::max(0.0, 1.0 + amplitude * std::sin(phase));
      }
      case ShapeKind::Ramp: {
        if (rampDuration == 0 || now >= rampDuration)
            return std::max(0.0, endFactor);
        const double t = static_cast<double>(now) /
            static_cast<double>(rampDuration);
        return std::max(0.0,
                        startFactor + (endFactor - startFactor) * t);
      }
      case ShapeKind::FlashCrowd: {
        if (now < stepAt)
            return 1.0;
        if (decayHalfLife == 0)
            return std::max(0.0, stepMagnitude);
        const double halves = static_cast<double>(now - stepAt) /
            static_cast<double>(decayHalfLife);
        return std::max(
            0.0, 1.0 + (stepMagnitude - 1.0) * std::exp2(-halves));
      }
    }
    return 1.0;
}

sim::Time
RateCurve::refreshHorizon(sim::Time now) const
{
    switch (kind) {
      case ShapeKind::Constant:
        return sim::kTimeNever;
      case ShapeKind::Diurnal:
        // 32 checkpoints per cycle track the sinusoid to a few
        // percent without flooding the event queue.
        return period > 0 ? std::max<sim::Time>(1, period / 32)
                          : sim::kTimeNever;
      case ShapeKind::Ramp:
        return now < rampDuration
            ? std::max<sim::Time>(1, rampDuration / 64)
            : sim::kTimeNever;
      case ShapeKind::FlashCrowd: {
        if (now < stepAt)
            return stepAt - now; // land exactly on the step
        // After ~10 half-lives the excess is under 0.1%: flat.
        if (decayHalfLife == 0 || now - stepAt > 10 * decayHalfLife)
            return sim::kTimeNever;
        return std::max<sim::Time>(1, decayHalfLife / 8);
      }
    }
    return sim::kTimeNever;
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec, sim::Rng rng)
    : spec_(std::move(spec)), rng_(rng)
{
}

void
ArrivalProcess::advanceState(sim::Time now)
{
    if (spec_.kind != ArrivalKind::Mmpp || spec_.states.size() < 2) {
        stateEnd_ = sim::kTimeNever;
        stateInit_ = true;
        return;
    }
    if (!stateInit_) {
        stateInit_ = true;
        state_ = 0;
        stateEnd_ = now +
            static_cast<sim::Time>(std::max(
                1.0, rng_.exponential(static_cast<double>(
                         spec_.states[state_].meanDwell))));
    }
    // Lazy catch-up: replay dwells until the chain covers `now`. The
    // chain depends only on the rng stream, not on when we look.
    while (now >= stateEnd_ && stateEnd_ != sim::kTimeNever) {
        const std::uint64_t hop =
            1 + rng_.uniformInt(
                    std::uint64_t{spec_.states.size()} - 1);
        state_ = (state_ + hop) % spec_.states.size();
        stateEnd_ += static_cast<sim::Time>(std::max(
            1.0, rng_.exponential(static_cast<double>(
                     spec_.states[state_].meanDwell))));
    }
}

double
ArrivalProcess::stateFactor(sim::Time now)
{
    advanceState(now);
    if (spec_.kind != ArrivalKind::Mmpp || spec_.states.empty())
        return 1.0;
    return spec_.states[state_].rateFactor;
}

ArrivalProcess::Draw
ArrivalProcess::next(double ratePerSec, sim::Time now,
                     sim::Time horizon)
{
    advanceState(now);
    double rate = ratePerSec;
    sim::Time bound = horizon;
    if (spec_.kind == ArrivalKind::Mmpp && !spec_.states.empty()) {
        rate *= spec_.states[state_].rateFactor;
        if (stateEnd_ != sim::kTimeNever)
            bound = std::min(bound, stateEnd_ - now);
    }

    Draw d;
    if (rate <= 0) {
        // Idle: wake at the next horizon to re-evaluate the rate.
        d.gap = bound != sim::kTimeNever ? std::max<sim::Time>(1, bound)
                                         : sim::milliseconds(1);
        d.arrival = false;
        return d;
    }

    const double meanGapNs = 1e9 / rate;
    const double gapNs = spec_.kind == ArrivalKind::Deterministic
        ? meanGapNs
        : rng_.exponential(meanGapNs);
    const auto gap =
        static_cast<sim::Time>(std::max(1.0, gapNs));
    if (bound != sim::kTimeNever && gap > bound) {
        // Overshot a rate-change boundary: truncate to a resample
        // checkpoint. Memorylessness makes this bias-free for the
        // Poisson kinds; deterministic pacing just re-paces.
        d.gap = std::max<sim::Time>(1, bound);
        d.arrival = false;
        return d;
    }
    d.gap = gap;
    d.arrival = true;
    return d;
}

} // namespace ditto::workload
