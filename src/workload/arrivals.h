/**
 * @file
 * Arrival processes and time-varying traffic shapes.
 *
 * The workload engine separates *when* clients show up from *what*
 * they do once they have. This file owns the "when": a pluggable
 * arrival process (Poisson, Markov-modulated Poisson with seeded
 * state switching, deterministic pacing) modulated by a rate curve
 * (diurnal sinusoid, linear ramp, flash-crowd step with decay).
 *
 * Everything is a pure function of (spec, seed, query times), so a
 * run is bit-identical at any RunExecutor worker count (DESIGN.md
 * §8). Rate changes are honored without bias by exploiting the
 * exponential's memorylessness: a sampled gap that overshoots the
 * next rate-change horizon is truncated to a resample checkpoint
 * instead of an arrival, which is statistically equivalent to having
 * sampled at the piecewise-constant rate in the first place.
 */

#ifndef DITTO_WORKLOAD_ARRIVALS_H_
#define DITTO_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace ditto::workload {

/** How inter-arrival gaps are drawn. */
enum class ArrivalKind : std::uint8_t
{
    Poisson,       //!< exponential gaps (open-loop internet traffic)
    Mmpp,          //!< Markov-modulated Poisson (bursty, correlated)
    Deterministic, //!< fixed 1/rate pacing (benchmark drivers)
};

/** Human-readable arrival kind name. */
const char *arrivalKindName(ArrivalKind kind);

/** One MMPP state: a rate multiplier held for an exponential dwell. */
struct MmppState
{
    double rateFactor = 1.0;
    sim::Time meanDwell = sim::milliseconds(10);
};

struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /**
     * MMPP state machine (kind == Mmpp). Switching is seeded: dwell
     * times are exponential with the state's mean, and the successor
     * state is drawn uniformly among the *other* states, so any
     * 2+-state chain keeps moving. Ignored by the other kinds.
     */
    std::vector<MmppState> states = {{0.4, sim::milliseconds(10)},
                                     {2.5, sim::milliseconds(4)}};
};

/** Shape of the offered-rate curve over simulated time. */
enum class ShapeKind : std::uint8_t
{
    Constant,   //!< flat offered rate
    Diurnal,    //!< sinusoid: rate * (1 + amplitude * sin(2pi t/period))
    Ramp,       //!< linear startFactor -> endFactor over rampDuration
    FlashCrowd, //!< step to stepMagnitude at stepAt, geometric decay
};

/** Human-readable shape name. */
const char *shapeKindName(ShapeKind kind);

/**
 * Time-varying multiplier applied to the base offered rate. Pure
 * function of (spec, now); negative excursions clamp to zero.
 */
struct RateCurve
{
    ShapeKind kind = ShapeKind::Constant;
    // ---- Diurnal ----------------------------------------------------
    double amplitude = 0.5;
    sim::Time period = sim::seconds(1);
    // ---- Ramp -------------------------------------------------------
    double startFactor = 1.0;
    double endFactor = 1.0;
    sim::Time rampDuration = sim::seconds(1);
    // ---- FlashCrowd -------------------------------------------------
    sim::Time stepAt = 0;
    double stepMagnitude = 4.0;
    /** Time for the excess (factor - 1) to halve after the step. */
    sim::Time decayHalfLife = sim::milliseconds(200);

    /** Rate multiplier at `now` (>= 0). */
    double factorAt(sim::Time now) const;

    /**
     * How far ahead the multiplier can be treated as constant: gaps
     * sampled past this horizon must be truncated to a resample
     * checkpoint (see ArrivalProcess::next). kTimeNever for Constant
     * and for curves that have flattened out.
     */
    sim::Time refreshHorizon(sim::Time now) const;
};

/**
 * Stateful gap sampler. One instance per engine/client; owns the
 * MMPP state chain so the modulation is continuous across draws.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(ArrivalSpec spec, sim::Rng rng);

    /** One draw: either an arrival or a resample checkpoint. */
    struct Draw
    {
        sim::Time gap = 0;    //!< schedule the next event this far out
        bool arrival = false; //!< true: send; false: just resample
    };

    /**
     * Sample the next inter-arrival gap at `ratePerSec` (the curve-
     * modulated offered rate, events/second). `horizon` bounds how
     * long the caller's rate is valid (RateCurve::refreshHorizon);
     * draws overshooting min(horizon, MMPP state boundary) come back
     * as non-arrival checkpoints. A non-positive rate yields a
     * checkpoint at `horizon` (or 1ms when the horizon is never).
     */
    Draw next(double ratePerSec, sim::Time now,
              sim::Time horizon = sim::kTimeNever);

    /** Current MMPP rate multiplier (1.0 for non-MMPP kinds). */
    double stateFactor(sim::Time now);

    const ArrivalSpec &spec() const { return spec_; }

  private:
    ArrivalSpec spec_;
    sim::Rng rng_;
    std::size_t state_ = 0;
    /** Absolute end of the current MMPP dwell (kTimeNever if N<2). */
    sim::Time stateEnd_ = 0;
    bool stateInit_ = false;

    void advanceState(sim::Time now);
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_ARRIVALS_H_
