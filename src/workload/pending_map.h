/**
 * @file
 * Sorted small-vector map from request tag to per-request state.
 *
 * Load generators key their in-flight requests by tag, and the map
 * sits on the per-request hot path (one insert + one erase per
 * request, one lookup per response or timeout). Tags come from a
 * monotonically increasing counter, so inserts land at the back of a
 * sorted vector (amortized push_back) and lookups are a binary search
 * over a handful of contiguous entries -- no node allocation, no
 * pointer chasing, unlike the std::map it replaces. The population is
 * small (per-connection in-flight window), so erase's memmove is
 * cheaper than a tree rebalance at every size we ever see.
 */

#ifndef DITTO_WORKLOAD_PENDING_MAP_H_
#define DITTO_WORKLOAD_PENDING_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ditto::workload {

/** Insert / find / erase map over monotonically increasing tags. */
template <typename V>
class TagMap
{
  public:
    struct Entry
    {
        std::uint64_t tag;
        V value;
    };

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Value for `tag`, or nullptr when not present. */
    V *
    find(std::uint64_t tag)
    {
        auto it = lowerBound(tag);
        return (it != entries_.end() && it->tag == tag) ? &it->value
                                                        : nullptr;
    }

    /**
     * Insert (tag, value); keeps the vector sorted. Tags are unique
     * by construction (a monotone counter), so no duplicate check.
     */
    void
    emplace(std::uint64_t tag, V value)
    {
        if (entries_.empty() || entries_.back().tag < tag) {
            entries_.push_back(Entry{tag, std::move(value)});
            return;
        }
        entries_.insert(lowerBound(tag), Entry{tag, std::move(value)});
    }

    /** @retval true when `tag` was present and is now removed. */
    bool
    erase(std::uint64_t tag)
    {
        auto it = lowerBound(tag);
        if (it == entries_.end() || it->tag != tag)
            return false;
        entries_.erase(it);
        return true;
    }

    /** In-flight entries in tag order (drain / inspection). */
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    typename std::vector<Entry>::iterator
    lowerBound(std::uint64_t tag)
    {
        return std::lower_bound(entries_.begin(), entries_.end(), tag,
                                [](const Entry &e, std::uint64_t t) {
                                    return e.tag < t;
                                });
    }

    std::vector<Entry> entries_;
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_PENDING_MAP_H_
