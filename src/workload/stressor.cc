#include "workload/stressor.h"

#include "hw/block_builder.h"

namespace ditto::workload {

std::string
stressKindName(StressKind kind)
{
    switch (kind) {
      case StressKind::Cpu: return "HT";
      case StressKind::L1d: return "L1d";
      case StressKind::L2: return "L2";
      case StressKind::Llc: return "LLC";
    }
    return "?";
}

/** The stressor's never-blocking thread. */
class CacheStressor::StressThread : public os::Thread
{
  public:
    StressThread(const hw::CodeImage &image, std::uint32_t block,
                 std::string name, std::uint64_t seed)
        : os::Thread(std::move(name), 0, seed), image_(image),
          block_(block)
    {
    }

    os::StepResult
    step(os::StepCtx &ctx) override
    {
        hw::ExecStats scratch;
        while (!ctx.overBudget()) {
            ctx.cyclesUsed += ctx.core.run(
                image_, block_, 64, execContext(), scratch);
        }
        if (statsSink())
            statsSink()->add(scratch);
        return {os::StopReason::Yield};
    }

  private:
    const hw::CodeImage &image_;
    std::uint32_t block_;
};

CacheStressor::CacheStressor(os::Machine &machine, StressKind kind,
                             int coreId, std::uint64_t seed)
    : machine_(machine), kind_(kind)
{
    const os::Machine::AddressRegion region = machine_.allocRegion();
    image_ = std::make_unique<hw::CodeImage>(region.textBase,
                                             region.dataBase, 1);

    hw::BlockSpec spec;
    spec.label = "stress." + stressKindName(kind);
    spec.seed = seed;
    spec.mix = hw::MixWeights::serverCode();
    spec.branchFraction = 0.04;
    spec.branchKinds = {{1, 4}};
    spec.depTightness = 0.15;  // high ILP: maximum pressure

    const auto &p = machine_.spec();
    switch (kind) {
      case StressKind::Cpu:
        spec.instCount = 96;
        spec.memFraction = 0.04;
        spec.streams = {{4096, hw::StreamKind::Sequential, false, 1.0}};
        break;
      case StressKind::L1d:
        spec.instCount = 96;
        spec.memFraction = 0.6;
        spec.streams = {{p.l1dBytes * 2, hw::StreamKind::Random, false,
                         1.0}};
        break;
      case StressKind::L2:
        spec.instCount = 96;
        spec.memFraction = 0.6;
        spec.streams = {{p.l2Bytes * 2, hw::StreamKind::Random, false,
                         1.0}};
        break;
      case StressKind::Llc:
        spec.instCount = 96;
        spec.memFraction = 0.6;
        spec.streams = {{p.llcBytes, hw::StreamKind::Random, false,
                         1.0}};
        break;
    }

    blockId_ = image_->addBlock(hw::buildBlock(spec));
    auto thread = std::make_unique<StressThread>(
        *image_, blockId_, "stress." + stressKindName(kind), seed);
    thread->setAffinity(coreId);
    machine_.scheduler().add(std::move(thread));
}

NetStressor::NetStressor(os::Machine &machine, double gbps)
    : machine_(machine), bytesPerNs_(gbps / 8.0)
{
    machine_.nic().hogBytesPerNs += bytesPerNs_;
}

NetStressor::~NetStressor()
{
    machine_.nic().hogBytesPerNs -= bytesPerNs_;
}

} // namespace ditto::workload
