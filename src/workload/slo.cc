#include "workload/slo.h"

#include <cinttypes>
#include <cstdio>

#include "workload/engine.h"
#include "workload/loadgen.h"

namespace ditto::workload {

std::string
SloReport::table() const
{
    // Fixed format => byte-identical output for identical runs.
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %12s %12s %9s %10s %11s %s\n", "class",
                  "endpoint", "offered_qps", "goodput_qps",
                  "viol_rate", "p_tgt_ms", "deadline_ms", "met");
    out += line;
    for (const SloClassReport &row : classes) {
        std::snprintf(
            line, sizeof(line),
            "%-10s %8u %12.1f %12.1f %9.4f %10.3f %11.3f %s\n",
            row.name.c_str(), row.endpoint, row.offeredQps,
            row.goodputQps, row.violationRate,
            static_cast<double>(row.latencyAtTargetNs) / 1e6,
            static_cast<double>(row.slo.deadline) / 1e6,
            row.met ? "yes" : "NO");
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %12.1f %12.1f\n", "total", "-",
                  offeredQps, goodputQps);
    out += line;
    return out;
}

double
kneePointRate(const std::vector<std::pair<double, double>> &sweep,
              double tolerance)
{
    bool sawOffered = false;
    for (const auto &[offered, goodput] : sweep) {
        if (offered <= 0)
            continue;
        sawOffered = true;
        if (goodput < offered * (1.0 - tolerance))
            return offered;
    }
    return sawOffered ? kKneeNone : kKneeEmptySweep;
}

namespace {

/** The counter series shared by LoadGen and WorkloadEngine. */
template <typename Client>
void
registerClientCommon(obs::MetricsRegistry &registry,
                     const Client &client, const std::string &label)
{
    const obs::MetricsRegistry::Labels labels = {{"client", label}};
    const struct
    {
        const char *name;
        const char *help;
        std::uint64_t (Client::*fn)() const;
    } counters[] = {
        {"ditto_client_sent_total", "Requests sent by the client",
         &Client::sent},
        {"ditto_client_completed_total",
         "Responses received (any status)", &Client::completed},
        {"ditto_client_ok_total", "Responses with Ok status",
         &Client::completedOk},
        {"ditto_client_error_total", "Responses with Error status",
         &Client::completedError},
        {"ditto_client_shed_total", "Responses with Shed status",
         &Client::completedShed},
        {"ditto_client_timed_out_total",
         "Requests that hit the client deadline", &Client::timedOut},
        {"ditto_client_late_responses_total",
         "Replies that arrived after their request timed out",
         &Client::lateResponses},
        {"ditto_client_cancels_sent_total",
         "Cancellation chase messages sent after timeouts",
         &Client::cancelsSent},
    };
    for (const auto &c : counters) {
        registry.addCounterFn(c.name, labels, c.help,
                              [&client, fn = c.fn] {
                                  return (client.*fn)();
                              });
    }
    registry.addGaugeFn(
        "ditto_client_achieved_qps", labels,
        "Completed requests/s over the measured window",
        [&client] { return client.achievedQps(); });
    registry.addGaugeFn(
        "ditto_client_goodput_qps", labels,
        "Ok-status requests/s over the measured window",
        [&client] { return client.goodput(); });
    registry.addHistogram("ditto_client_latency_ns", labels,
                          "Client-observed response latency",
                          &client.latency());
}

} // namespace

void
registerLoadGenMetrics(obs::MetricsRegistry &registry,
                       const LoadGen &gen, const std::string &client)
{
    registerClientCommon(registry, gen, client);
}

void
registerEngineMetrics(obs::MetricsRegistry &registry,
                      const WorkloadEngine &engine,
                      const std::string &client)
{
    registerClientCommon(registry, engine, client);
    const obs::MetricsRegistry::Labels labels = {{"client", client}};
    registry.addGaugeFn("ditto_client_in_flight", labels,
                        "Calls awaiting a response or timeout",
                        [&engine] {
                            return static_cast<double>(
                                engine.inFlight());
                        });
    registry.addCounterFn(
        "ditto_workload_sessions_started_total", labels,
        "User sessions admitted",
        [&engine] { return engine.sessionsStarted(); });
    registry.addCounterFn(
        "ditto_workload_sessions_finished_total", labels,
        "User sessions that logged out",
        [&engine] { return engine.sessionsFinished(); });
    registry.addGaugeFn("ditto_workload_active_sessions", labels,
                        "Sessions currently logged in", [&engine] {
                            return static_cast<double>(
                                engine.activeSessions());
                        });
    // Client-side retry series, present only when retries are armed
    // (ClientRetrySpec::maxAttempts > 1) so default engines register
    // an unchanged set.
    if (engine.spec().retry.maxAttempts > 1) {
        registry.addCounterFn(
            "ditto_client_retries_sent_total", labels,
            "Retry attempts issued by the client",
            [&engine] { return engine.retriesSent(); });
        registry.addCounterFn(
            "ditto_client_retries_suppressed_total", labels,
            "Retries suppressed by the exhausted client budget",
            [&engine] { return engine.retriesSuppressed(); });
        registry.addGaugeFn(
            "ditto_client_retry_tokens", labels,
            "Client retry-budget tokens available",
            [&engine] { return engine.retryTokens(); });
    }
    for (std::size_t i = 0; i < engine.classCount(); ++i) {
        const obs::MetricsRegistry::Labels classLabels = {
            {"class", engine.classSpec(i).name}, {"client", client}};
        registry.addCounterFn(
            "ditto_slo_sent_total", classLabels,
            "Calls sent in this endpoint class",
            [&engine, i] { return engine.classSent(i); });
        registry.addCounterFn(
            "ditto_slo_ok_in_deadline_total", classLabels,
            "Calls answered Ok within the class deadline",
            [&engine, i] { return engine.classOkInDeadline(i); });
        registry.addCounterFn(
            "ditto_slo_violations_total", classLabels,
            "Calls that settled outside the class SLO",
            [&engine, i] { return engine.classViolations(i); });
    }
}

} // namespace ditto::workload
