/**
 * @file
 * Per-class SLO accounting: goodput within deadline, violation
 * rates, and knee-point detection.
 *
 * The paper's fidelity evaluation (Sec. 5, Fig. 5) and the QoS-under-
 * scaling style of CloudNativeSim both hinge on *goodput* -- requests
 * answered Ok within their class deadline -- rather than raw latency.
 * An SloSpec attaches a deadline and a target percentile to each
 * endpoint class; the engine tallies per-class outcomes against it
 * and this module turns the tallies into reports, knee points, and
 * `ditto_slo_*` / `ditto_client_*` series on a MetricsRegistry (pull
 * callbacks only, per the zero-cost-when-disabled contract of
 * DESIGN.md §7).
 */

#ifndef DITTO_WORKLOAD_SLO_H_
#define DITTO_WORKLOAD_SLO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace ditto::workload {

class LoadGen;
class WorkloadEngine;

/** Service-level objective of one endpoint class. */
struct SloSpec
{
    /** End-to-end deadline a response must beat to count as good. */
    sim::Time deadline = sim::milliseconds(5);
    /** Percentile the deadline is promised at (met/missed verdict). */
    double targetPercentile = 0.99;
};

/** One endpoint class's measured-window SLO outcome. */
struct SloClassReport
{
    std::string name;
    std::uint32_t endpoint = 0;
    SloSpec slo;
    // ---- raw tallies (measured window) ------------------------------
    std::uint64_t sent = 0;
    std::uint64_t settled = 0;      //!< responses + timeouts
    std::uint64_t okInDeadline = 0; //!< Ok status and under deadline
    std::uint64_t violations = 0;   //!< settled - okInDeadline
    // ---- rates ------------------------------------------------------
    double offeredQps = 0;  //!< sent / window
    double goodputQps = 0;  //!< okInDeadline / window
    double violationRate = 0; //!< violations / settled (0 if none)
    /** Measured latency at the target percentile (ns). */
    std::uint64_t latencyAtTargetNs = 0;
    /** percentile(target) <= deadline over the window. */
    bool met = false;
};

/** Whole-engine SLO outcome for one measured window. */
struct SloReport
{
    std::vector<SloClassReport> classes;
    double offeredQps = 0;
    double goodputQps = 0;

    /**
     * Deterministic fixed-format text table (one line per class).
     * Byte-identical across --jobs for identical runs; tests and
     * benches print it directly.
     */
    std::string table() const;
};

/**
 * kneePointRate sentinels. Both are negative so `rate > 0` still
 * means "a knee was observed at this offered rate", but "goodput
 * tracked offered through the whole sweep" and "there was nothing to
 * analyze" are no longer conflated (they used to both return 0).
 */
/** Goodput tracked offered load through the maximum offered rate. */
inline constexpr double kKneeNone = -1.0;
/** The sweep was empty (or held no positive offered rate). */
inline constexpr double kKneeEmptySweep = -2.0;

/**
 * Knee point of a load sweep: the first offered rate where goodput
 * falls short of the offered load by more than `tolerance`
 * (fractional). `sweep` holds (offeredQps, goodputQps) pairs in
 * ascending offered order. Returns kKneeNone when goodput tracks
 * offered across the whole sweep (no knee at or below the max
 * offered rate) and kKneeEmptySweep when no entry has a positive
 * offered rate.
 */
double kneePointRate(
    const std::vector<std::pair<double, double>> &sweep,
    double tolerance = 0.1);

/**
 * Register a LoadGen's client-side outcome counters and latency as
 * pull series (`ditto_client_*`, labelled {client=<client>}), so
 * client-side outcomes survive the Prometheus/JSON writers like
 * server-side ServiceStats already do. The generator must outlive
 * the registry's last snapshot.
 */
void registerLoadGenMetrics(obs::MetricsRegistry &registry,
                            const LoadGen &gen,
                            const std::string &client);

/**
 * Register a WorkloadEngine's client counters plus its per-class SLO
 * series (`ditto_slo_*`, labelled {client, class}).
 */
void registerEngineMetrics(obs::MetricsRegistry &registry,
                           const WorkloadEngine &engine,
                           const std::string &client);

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_SLO_H_
