/**
 * @file
 * Sessionized workload engine: the millions-of-users client model.
 *
 * Where LoadGen offers a single memoryless request stream, the
 * WorkloadEngine models *users*: a session logs in, issues a sequence
 * of endpoint calls separated by log-normal think times (with
 * endpoint affinity -- users tend to hammer the page they are on),
 * and logs out. Sessions arrive through a pluggable ArrivalProcess
 * (Poisson / MMPP / deterministic) modulated by a time-varying
 * RateCurve (diurnal / ramp / flash crowd), each session is pinned to
 * one client connection for its lifetime (connection reuse), and
 * every endpoint class carries an SloSpec so the engine can report
 * goodput-within-deadline and violation rates per class.
 *
 * Determinism: one seeded Rng stream drives arrivals, session
 * shaping, and per-call choices in event order, so a run is
 * bit-identical at any RunExecutor --jobs (DESIGN.md §8). The engine,
 * like LoadGen, is an external client: its CPU is not modeled and its
 * requests enter through the target's NIC and kernel.
 */

#ifndef DITTO_WORKLOAD_ENGINE_H_
#define DITTO_WORKLOAD_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "app/overload.h"
#include "app/service.h"
#include "os/socket.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "stats/histogram.h"
#include "workload/arrivals.h"
#include "workload/pending_map.h"
#include "workload/slo.h"

namespace ditto::workload {

/** One endpoint class: traffic mix entry plus its SLO. */
struct EndpointClass
{
    std::string name = "default";
    std::uint32_t endpoint = 0;
    double weight = 1.0;
    std::uint32_t reqBytesMin = 64;
    std::uint32_t reqBytesMax = 64;
    SloSpec slo;
    /**
     * Priority stamped on every call of this class (0 = lowest,
     * sheds first) and propagated downstream by services hop by hop.
     * Only consulted by services whose OverloadSpec grades admission
     * by priority.
     */
    std::uint8_t priority = 0;
};

/**
 * Client-side retry policy: failed calls (timeouts and, optionally,
 * shed responses) are re-sent after a fixed deterministic backoff,
 * bounded by an app::RetryBudget token bucket. Every attempt is its
 * own sent/settled call, so the engine's conservation contract is
 * untouched. Defaults disable retries entirely.
 */
struct ClientRetrySpec
{
    /** Total attempts per logical call including the first. */
    unsigned maxAttempts = 1;
    /** Fixed pause before a retry (no jitter: determinism). */
    sim::Time backoff = sim::microseconds(500);
    /** Also retry calls answered with MsgStatus::Shed. */
    bool retryOnShed = true;
    /**
     * Retry-budget token ratio: fresh calls deposit this many tokens,
     * each retry withdraws one (retries <= ~ratio x fresh traffic).
     * 0 disables the budget -- retries are then unbounded, which is
     * exactly the configuration that goes metastable (bench_overload).
     */
    double budgetRatio = 0.0;
    double budgetInitial = 10.0;
    double budgetCap = 100.0;
};

/** Shape of an individual user session. */
struct SessionModel
{
    /** Calls per session, uniform in [minCalls, maxCalls]. */
    unsigned minCalls = 3;
    unsigned maxCalls = 10;
    /** Mean think time between calls (log-normal). */
    sim::Time meanThink = sim::milliseconds(2);
    /** Log-space sigma of the think-time log-normal. */
    double thinkSigma = 0.7;
    /**
     * Probability the next call repeats the previous call's endpoint
     * class instead of redrawing from the weights.
     */
    double endpointAffinity = 0.6;
};

/** Full description of the sessionized offered load. */
struct WorkloadSpec
{
    /** Base session arrival rate (sessions/second, before shaping). */
    double sessionsPerSec = 200;
    unsigned connections = 8;
    ArrivalSpec arrivals;
    RateCurve shape;
    SessionModel session;
    std::vector<EndpointClass> classes = {EndpointClass{}};
    /** Client-side deadline per call; 0 disables (see LoadSpec). */
    sim::Time timeout = 0;
    bool propagateDeadline = false;
    bool cancelOnTimeout = false;
    /** Client-side retries + retry budget (off by default). */
    ClientRetrySpec retry;
    /**
     * Record one `workload` span per sampled session on the Jaeger
     * path, with every call in the session sharing the session's
     * trace id under that root span. Disable when downstream topology
     * analysis must see only the service graph (clone closure).
     */
    bool traceSessions = true;
};

class WorkloadEngine
{
  public:
    WorkloadEngine(app::Deployment &dep, app::ServiceInstance &target,
                   WorkloadSpec spec, std::uint64_t seed = 99);
    ~WorkloadEngine();

    WorkloadEngine(const WorkloadEngine &) = delete;
    WorkloadEngine &operator=(const WorkloadEngine &) = delete;

    /** Begin admitting sessions. */
    void start();

    /**
     * Stop admitting sessions. Active sessions end at their next
     * think event; in-flight calls settle normally, so a short drain
     * brings inFlight() to zero.
     */
    void stop();

    /** Reset the measured window (latency + per-class SLO tallies). */
    void beginMeasure();

    /** Change the base session arrival rate immediately. */
    void setSessionsPerSec(double rate);

    // ---- per-call outcome accounting --------------------------------
    // sent() == completedOk() + completedError() + completedShed() +
    // timedOut() + inFlight() at any instant: the same conservation
    // contract as LoadGen, checked by the chaos harness.

    std::uint64_t sent() const { return sent_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t completedOk() const { return completedOk_; }
    std::uint64_t completedError() const { return completedError_; }
    std::uint64_t completedShed() const { return completedShed_; }
    std::uint64_t timedOut() const { return timedOut_; }
    std::uint64_t lateResponses() const { return lateResponses_; }
    std::uint64_t cancelsSent() const { return cancelsSent_; }

    // ---- client retry accounting ------------------------------------
    // Every retry is a fresh sent() call, so the conservation
    // contract above is untouched by retries.
    std::uint64_t retriesSent() const { return retriesSent_; }
    std::uint64_t retriesSuppressed() const
    {
        return retriesSuppressed_;
    }
    double retryTokens() const { return retryBudget_.tokens(); }

    /** Calls currently awaiting a response or timeout. */
    std::uint64_t inFlight() const;

    // ---- session accounting -----------------------------------------
    std::uint64_t sessionsStarted() const { return sessionsStarted_; }
    std::uint64_t sessionsFinished() const
    {
        return sessionsFinished_;
    }
    std::uint64_t activeSessions() const
    {
        return sessionsStarted_ - sessionsFinished_;
    }

    const stats::LatencyHistogram &latency() const { return latency_; }

    /** Completed calls per second over the measured window. */
    double achievedQps() const;

    /** Ok-status calls per second over the measured window. */
    double goodput() const;

    /** Per-class SLO outcome over the measured window. */
    SloReport sloReport() const;

    // ---- class introspection (metrics registration) -----------------
    std::size_t classCount() const { return spec_.classes.size(); }
    const EndpointClass &classSpec(std::size_t i) const
    {
        return spec_.classes[i];
    }
    std::uint64_t classSent(std::size_t i) const;
    std::uint64_t classOkInDeadline(std::size_t i) const;
    std::uint64_t classViolations(std::size_t i) const;

    const WorkloadSpec &spec() const { return spec_; }

  private:
    /** One in-flight call, keyed by tag in its connection's map. */
    struct Pending
    {
        sim::EventId timer = 0; //!< client deadline event (0 = none)
        std::uint64_t session = 0;
        std::uint32_t cls = 0;
        /** Send instant; settles count toward the measured window
         *  only when they were also sent inside it. */
        sim::Time sendTime = 0;
        /** Attempt number of this send (1 = first). */
        unsigned attempt = 1;
        /** Request bytes, reused verbatim by a retry (no redraw). */
        std::uint32_t bytes = 64;
    };

    struct Conn
    {
        std::unique_ptr<os::Socket> client;
        os::Socket *server = nullptr;
        TagMap<Pending> pending;
    };

    /** One live user session. */
    struct Session
    {
        std::size_t conn = 0;    //!< pinned connection index
        unsigned callsLeft = 0;
        std::uint32_t lastClass = 0;
        bool hasLast = false;
        std::uint64_t traceId = 0; //!< 0 when the session is untraced
        std::uint64_t rootSpan = 0;
        sim::Time startTime = 0;
        sim::EventId thinkTimer = 0; //!< pending think event (0 = none)
    };

    /** Per-class cumulative + measured-window SLO tallies. */
    struct ClassState
    {
        std::uint64_t sent = 0;
        std::uint64_t settled = 0;
        std::uint64_t okInDeadline = 0;
        std::uint64_t violations = 0;
        std::uint64_t mSent = 0;
        std::uint64_t mSettled = 0;
        std::uint64_t mOkInDeadline = 0;
        std::uint64_t mViolations = 0;
        stats::LatencyHistogram latency; //!< measured window only
    };

    app::Deployment &dep_;
    app::ServiceInstance &target_;
    WorkloadSpec spec_;
    sim::Rng rng_;
    ArrivalProcess arrivals_;
    sim::EmpiricalDist classPick_;
    double thinkMu_ = 0; //!< log-space mean for the think log-normal
    std::vector<Conn> conns_;
    TagMap<Session> sessions_; //!< keyed by monotone session id
    std::vector<ClassState> classes_;
    stats::LatencyHistogram latency_;
    std::uint64_t sent_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t completedOk_ = 0;
    std::uint64_t completedError_ = 0;
    std::uint64_t completedShed_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t lateResponses_ = 0;
    std::uint64_t cancelsSent_ = 0;
    std::uint64_t retriesSent_ = 0;
    std::uint64_t retriesSuppressed_ = 0;
    app::RetryBudget retryBudget_;
    std::uint64_t sessionsStarted_ = 0;
    std::uint64_t sessionsFinished_ = 0;
    std::uint64_t nextSession_ = 1;
    std::uint64_t nextTrace_ = 1;
    std::uint64_t nextTag_ = 1;
    bool running_ = false;
    sim::Time measureStart_ = 0;
    std::uint64_t measuredCompleted_ = 0;
    std::uint64_t measuredOk_ = 0;

    void scheduleNextArrival();
    void startSession();
    void scheduleNextCall(std::uint64_t sessionId);
    void sendCall(std::uint64_t sessionId);
    void sendAttempt(std::uint64_t sessionId, std::uint32_t cls,
                     std::uint32_t bytes, unsigned attempt);
    /**
     * Schedule a retry of the failed attempt `p` when the retry spec,
     * attempt count, and budget all allow it. @retval false the call
     * is final -- the caller must continueSession.
     */
    bool maybeRetry(const Pending &p, bool fromShed);
    void onResponse(std::size_t connIdx, const os::Message &resp);
    void onTimeout(std::size_t connIdx, std::uint64_t tag);
    void settleCall(const Pending &p, bool ok, sim::Time latencyNs,
                    bool timedOut);
    void continueSession(std::uint64_t sessionId);
    void endSession(std::uint64_t sessionId);
    std::uint32_t pickClass(Session &s);
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_ENGINE_H_
