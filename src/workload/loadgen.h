/**
 * @file
 * Load generation: open- and closed-loop clients.
 *
 * Open-loop clients (mutated / tcpkali / modified-wrk2 in the paper)
 * send with Poisson interarrivals independent of completions, so
 * saturation shows up as unbounded queueing and p99 blowup.
 * Closed-loop clients (YCSB for MongoDB/Redis) allow one outstanding
 * request per connection and rate-limit arrivals, so latency stays
 * bounded at high load -- exactly the Fig. 5 latency shapes.
 *
 * The client itself is external to the simulated machines (its CPU is
 * not modeled); requests enter through the server's NIC and kernel.
 */

#ifndef DITTO_WORKLOAD_LOADGEN_H_
#define DITTO_WORKLOAD_LOADGEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "app/deployment.h"
#include "app/service.h"
#include "os/socket.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "stats/histogram.h"
#include "workload/pending_map.h"

namespace ditto::workload {

/** Mix entry: an endpoint plus its weight and request size range. */
struct EndpointLoad
{
    std::uint32_t endpoint = 0;
    double weight = 1.0;
    std::uint32_t reqBytesMin = 64;
    std::uint32_t reqBytesMax = 64;
};

/** Full description of the offered load. */
struct LoadSpec
{
    double qps = 1000;
    unsigned connections = 8;
    bool openLoop = true;
    std::vector<EndpointLoad> endpoints = {EndpointLoad{}};
    /**
     * Client-side deadline per request; 0 disables. Expired requests
     * count as timedOut() (not completed()), and their late replies
     * are discarded as lateResponses().
     */
    sim::Time timeout = 0;
    /**
     * Stamp each request with an absolute deadline (sendTime +
     * timeout) so deadline-propagating services can forward the
     * remaining budget downstream. Requires timeout > 0.
     */
    bool propagateDeadline = false;
    /**
     * On client timeout, chase the abandoned request with a
     * MsgKind::Cancel so the server subtree stops working on it.
     */
    bool cancelOnTimeout = false;
};

class LoadGen
{
  public:
    LoadGen(app::Deployment &dep, app::ServiceInstance &target,
            LoadSpec spec, std::uint64_t seed = 99);
    ~LoadGen();

    LoadGen(const LoadGen &) = delete;
    LoadGen &operator=(const LoadGen &) = delete;

    /** Begin generating load. */
    void start();

    /** Stop issuing new requests (in-flight ones complete). */
    void stop();

    /** Reset measured latency/counters (start of measured window). */
    void beginMeasure();

    const stats::LatencyHistogram &latency() const { return latency_; }
    std::uint64_t sent() const { return sent_; }
    std::uint64_t completed() const { return completed_; }

    // ---- per-request outcome accounting -----------------------------
    // sent() == completedOk() + completedError() + completedShed() +
    // timedOut() + in-flight, so loss anywhere in the stack is
    // attributable. completed() counts every received response
    // regardless of status.

    /** Responses with Ok status (successful end-to-end requests). */
    std::uint64_t completedOk() const { return completedOk_; }
    /** Responses with Error status (degraded by a downstream fault). */
    std::uint64_t completedError() const { return completedError_; }
    /** Responses with Shed status (rejected by load shedding). */
    std::uint64_t completedShed() const { return completedShed_; }
    /** Requests that hit the client deadline with no response. */
    std::uint64_t timedOut() const { return timedOut_; }
    /** Replies that arrived after their request had timed out. */
    std::uint64_t lateResponses() const { return lateResponses_; }
    /** Cancellation chase messages sent after client timeouts. */
    std::uint64_t cancelsSent() const { return cancelsSent_; }

    /** Completed requests per second over the measured window. */
    double achievedQps() const;

    /**
     * *Successful* (Ok-status, in-deadline) requests per second over
     * the measured window -- the number that drops under faults even
     * when achievedQps() holds up.
     */
    double goodput() const;

    /**
     * Change the target rate on the fly. Open-loop clients reschedule
     * their pending arrival immediately (the old gap was sampled at
     * the old rate; memorylessness makes the resample bias-free), so
     * rate curves see the new rate now, not one stale gap later.
     */
    void setQps(double qps);

  private:
    struct Conn
    {
        std::unique_ptr<os::Socket> client;
        os::Socket *server = nullptr;
        /**
         * In-flight requests: tag -> pending deadline event (0 when
         * no client timeout is configured). Open-loop connections can
         * have several requests in flight at once. Tags are monotone,
         * so the sorted small-vector map inserts at the back.
         */
        TagMap<sim::EventId> pending;

        bool outstanding() const { return !pending.empty(); }
    };

    app::Deployment &dep_;
    app::ServiceInstance &target_;
    LoadSpec spec_;
    sim::Rng rng_;
    sim::EmpiricalDist endpointPick_;
    std::vector<Conn> conns_;
    stats::LatencyHistogram latency_;
    std::uint64_t sent_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t completedOk_ = 0;
    std::uint64_t completedError_ = 0;
    std::uint64_t completedShed_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t lateResponses_ = 0;
    std::uint64_t cancelsSent_ = 0;
    std::uint64_t nextTrace_ = 1;
    unsigned rrConn_ = 0;
    bool running_ = false;
    /** Pending open-loop arrival event (0 when none is scheduled). */
    sim::EventId openArrival_ = 0;
    sim::Time measureStart_ = 0;
    std::uint64_t measuredCompleted_ = 0;
    std::uint64_t measuredOk_ = 0;

    void scheduleNextOpen();
    void scheduleNextClosed(std::size_t connIdx);
    void sendOn(std::size_t connIdx);
    void onResponse(std::size_t connIdx, const os::Message &resp);
    void onTimeout(std::size_t connIdx, std::uint64_t tag);
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_LOADGEN_H_
