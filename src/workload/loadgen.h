/**
 * @file
 * Load generation: open- and closed-loop clients.
 *
 * Open-loop clients (mutated / tcpkali / modified-wrk2 in the paper)
 * send with Poisson interarrivals independent of completions, so
 * saturation shows up as unbounded queueing and p99 blowup.
 * Closed-loop clients (YCSB for MongoDB/Redis) allow one outstanding
 * request per connection and rate-limit arrivals, so latency stays
 * bounded at high load -- exactly the Fig. 5 latency shapes.
 *
 * The client itself is external to the simulated machines (its CPU is
 * not modeled); requests enter through the server's NIC and kernel.
 */

#ifndef DITTO_WORKLOAD_LOADGEN_H_
#define DITTO_WORKLOAD_LOADGEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "app/deployment.h"
#include "app/service.h"
#include "os/socket.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "stats/histogram.h"

namespace ditto::workload {

/** Mix entry: an endpoint plus its weight and request size range. */
struct EndpointLoad
{
    std::uint32_t endpoint = 0;
    double weight = 1.0;
    std::uint32_t reqBytesMin = 64;
    std::uint32_t reqBytesMax = 64;
};

/** Full description of the offered load. */
struct LoadSpec
{
    double qps = 1000;
    unsigned connections = 8;
    bool openLoop = true;
    std::vector<EndpointLoad> endpoints = {EndpointLoad{}};
};

class LoadGen
{
  public:
    LoadGen(app::Deployment &dep, app::ServiceInstance &target,
            LoadSpec spec, std::uint64_t seed = 99);
    ~LoadGen();

    LoadGen(const LoadGen &) = delete;
    LoadGen &operator=(const LoadGen &) = delete;

    /** Begin generating load. */
    void start();

    /** Stop issuing new requests (in-flight ones complete). */
    void stop();

    /** Reset measured latency/counters (start of measured window). */
    void beginMeasure();

    const stats::LatencyHistogram &latency() const { return latency_; }
    std::uint64_t sent() const { return sent_; }
    std::uint64_t completed() const { return completed_; }

    /** Completed requests per second over the measured window. */
    double achievedQps() const;

    /** Change the target rate on the fly. */
    void setQps(double qps) { spec_.qps = qps; }

  private:
    struct Conn
    {
        std::unique_ptr<os::Socket> client;
        os::Socket *server = nullptr;
        bool outstanding = false;
    };

    app::Deployment &dep_;
    app::ServiceInstance &target_;
    LoadSpec spec_;
    sim::Rng rng_;
    sim::EmpiricalDist endpointPick_;
    std::vector<Conn> conns_;
    stats::LatencyHistogram latency_;
    std::uint64_t sent_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t nextTrace_ = 1;
    unsigned rrConn_ = 0;
    bool running_ = false;
    sim::Time measureStart_ = 0;
    std::uint64_t measuredCompleted_ = 0;

    void scheduleNextOpen();
    void scheduleNextClosed(std::size_t connIdx);
    void sendOn(std::size_t connIdx);
    void onResponse(std::size_t connIdx, const os::Message &resp);
};

} // namespace ditto::workload

#endif // DITTO_WORKLOAD_LOADGEN_H_
