#include "hw/isa.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace ditto::hw {

namespace {

constexpr std::uint8_t kAluPorts = kPort0 | kPort1 | kPort5 | kPort6;
constexpr std::uint8_t kLoadPorts = kPort2 | kPort3;
constexpr std::uint8_t kStorePorts = kPort4 | kPort7;
constexpr std::uint8_t kP0 = kPort0;
constexpr std::uint8_t kP1 = kPort1;
constexpr std::uint8_t kP5 = kPort5;
constexpr std::uint8_t kP6 = kPort6;
constexpr std::uint8_t kP01 = kPort0 | kPort1;
constexpr std::uint8_t kP06 = kPort0 | kPort6;
constexpr std::uint8_t kP015 = kPort0 | kPort1 | kPort5;

struct Row
{
    std::string_view iform;
    InstClass cls;
    OperandKind op;
    std::uint8_t uops;
    std::uint8_t lat;
    std::uint8_t ports;
    bool load;
    bool store;
    bool branch;
    std::uint8_t rep;
};

// The iform table. Order defines opcode values; append-only.
const Row kTable[] = {
    // ---- data movement -------------------------------------------------
    {"MOV_GPR64_GPR64", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"MOV_GPR64_IMM64", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"MOV_GPR32_GPR32", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"MOV_GPR64_MEM64", InstClass::DataMove, OperandKind::Gpr,
     1, 4, kLoadPorts, true, false, false, 0},
    {"MOV_GPR32_MEM32", InstClass::DataMove, OperandKind::Gpr,
     1, 4, kLoadPorts, true, false, false, 0},
    {"MOV_MEM64_GPR64", InstClass::DataMove, OperandKind::Gpr,
     2, 1, kStorePorts, false, true, false, 0},
    {"MOV_MEM32_GPR32", InstClass::DataMove, OperandKind::Gpr,
     2, 1, kStorePorts, false, true, false, 0},
    {"MOVZX_GPR64_MEM8", InstClass::DataMove, OperandKind::Gpr,
     1, 4, kLoadPorts, true, false, false, 0},
    {"MOVSX_GPR64_MEM16", InstClass::DataMove, OperandKind::Gpr,
     1, 4, kLoadPorts, true, false, false, 0},
    {"LEA_GPR64_AGEN", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kPort1 | kPort5, false, false, false, 0},
    {"CMOVZ_GPR64_GPR64", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"CMOVNZ_GPR64_GPR64", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"XCHG_GPR64_GPR64", InstClass::DataMove, OperandKind::Gpr,
     3, 2, kAluPorts, false, false, false, 0},
    {"PUSH_GPR64", InstClass::DataMove, OperandKind::Gpr,
     1, 1, kStorePorts, false, true, false, 0},
    {"POP_GPR64", InstClass::DataMove, OperandKind::Gpr,
     1, 4, kLoadPorts, true, false, false, 0},
    {"MOVAPS_XMM_XMM", InstClass::DataMove, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"MOVDQU_XMM_MEM128", InstClass::DataMove, OperandKind::Xmm,
     1, 5, kLoadPorts, true, false, false, 0},
    {"MOVDQU_MEM128_XMM", InstClass::DataMove, OperandKind::Xmm,
     2, 1, kStorePorts, false, true, false, 0},
    {"MOVQ_XMM_GPR64", InstClass::DataMove, OperandKind::Xmm,
     1, 2, kP0, false, false, false, 0},
    {"MOVQ_GPR64_XMM", InstClass::DataMove, OperandKind::Xmm,
     1, 2, kP0, false, false, false, 0},

    // ---- integer arithmetic --------------------------------------------
    {"ADD_GPR64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"ADD_GPR64_IMM32", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"ADD_GPR64_MEM64", InstClass::IntArith, OperandKind::Gpr,
     2, 5, kLoadPorts, true, false, false, 0},
    {"ADD_MEM64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     4, 6, kLoadPorts, true, true, false, 0},
    {"SUB_GPR64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"SUB_GPR64_MEM64", InstClass::IntArith, OperandKind::Gpr,
     2, 5, kLoadPorts, true, false, false, 0},
    {"INC_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"DEC_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"NEG_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"ADC_GPR64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"CMP_GPR64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"CMP_GPR64_IMM32", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"CMP_GPR64_MEM64", InstClass::IntArith, OperandKind::Gpr,
     2, 5, kLoadPorts, true, false, false, 0},
    {"TEST_GPR64_GPR64", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"TEST_GPR32_IMM32", InstClass::IntArith, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},

    // ---- integer multiply / divide -------------------------------------
    {"IMUL_GPR64_GPR64", InstClass::IntMul, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"IMUL_GPR32_GPR32", InstClass::IntMul, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"MUL_GPR64", InstClass::IntMul, OperandKind::Gpr,
     2, 4, kP1 | kP5, false, false, false, 0},
    {"IMUL_GPR64_MEM64", InstClass::IntMul, OperandKind::Gpr,
     2, 8, kP1 | kLoadPorts, true, false, false, 0},
    {"MUL_MEM64", InstClass::IntMul, OperandKind::Gpr,
     3, 8, kP1 | kP5 | kLoadPorts, true, false, false, 0},
    {"DIV_GPR64", InstClass::IntDiv, OperandKind::Gpr,
     10, 36, kP0, false, false, false, 0},
    {"IDIV_GPR64", InstClass::IntDiv, OperandKind::Gpr,
     10, 42, kP0, false, false, false, 0},
    {"DIV_GPR32", InstClass::IntDiv, OperandKind::Gpr,
     10, 26, kP0, false, false, false, 0},
    {"IDIV_GPR32", InstClass::IntDiv, OperandKind::Gpr,
     10, 26, kP0, false, false, false, 0},

    // ---- logic / shift ---------------------------------------------------
    {"AND_GPR64_GPR64", InstClass::Logic, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"OR_GPR64_GPR64", InstClass::Logic, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"XOR_GPR64_GPR64", InstClass::Logic, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"XOR_GPR32_GPR32", InstClass::Logic, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"NOT_GPR64", InstClass::Logic, OperandKind::Gpr,
     1, 1, kAluPorts, false, false, false, 0},
    {"AND_GPR64_MEM64", InstClass::Logic, OperandKind::Gpr,
     2, 5, kLoadPorts, true, false, false, 0},
    {"XOR_MEM64_GPR64", InstClass::Logic, OperandKind::Gpr,
     4, 6, kLoadPorts, true, true, false, 0},
    {"SHL_GPR64_IMM8", InstClass::Shift, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"SHR_GPR64_IMM8", InstClass::Shift, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"SAR_GPR64_IMM8", InstClass::Shift, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"SHL_GPR64_CL", InstClass::Shift, OperandKind::Gpr,
     3, 2, kP06, false, false, false, 0},
    {"ROL_GPR64_IMM8", InstClass::Shift, OperandKind::Gpr,
     1, 1, kP06, false, false, false, 0},
    {"ROR_GPR64_CL", InstClass::Shift, OperandKind::Gpr,
     3, 2, kP06, false, false, false, 0},

    // ---- scalar floating point -------------------------------------------
    {"ADDSD_XMM_XMM", InstClass::FpArith, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"SUBSD_XMM_XMM", InstClass::FpArith, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"ADDSS_XMM_XMM", InstClass::FpArith, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"UCOMISD_XMM_XMM", InstClass::FpArith, OperandKind::Xmm,
     1, 2, kP0, false, false, false, 0},
    {"MAXSD_XMM_XMM", InstClass::FpArith, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"ADDSD_XMM_MEM64", InstClass::FpArith, OperandKind::Xmm,
     2, 9, kLoadPorts, true, false, false, 0},
    {"FADD_X87", InstClass::FpArith, OperandKind::X87,
     1, 3, kP5, false, false, false, 0},
    {"FSUB_X87", InstClass::FpArith, OperandKind::X87,
     1, 3, kP5, false, false, false, 0},
    {"MULSD_XMM_XMM", InstClass::FpMul, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"MULSS_XMM_XMM", InstClass::FpMul, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"FMUL_X87", InstClass::FpMul, OperandKind::X87,
     1, 5, kP0, false, false, false, 0},
    {"DIVSD_XMM_XMM", InstClass::FpDiv, OperandKind::Xmm,
     1, 14, kP0, false, false, false, 0},
    {"DIVSS_XMM_XMM", InstClass::FpDiv, OperandKind::Xmm,
     1, 11, kP0, false, false, false, 0},
    {"SQRTSD_XMM_XMM", InstClass::FpDiv, OperandKind::Xmm,
     1, 18, kP0, false, false, false, 0},
    {"FDIV_X87", InstClass::FpDiv, OperandKind::X87,
     1, 15, kP0, false, false, false, 0},

    // ---- SIMD -------------------------------------------------------------
    {"PADDQ_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"PADDD_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"PSUBB_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"PAND_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"POR_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"PXOR_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP015, false, false, false, 0},
    {"PCMPEQB_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP01, false, false, false, 0},
    {"PMOVMSKB_GPR32_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 3, kP0, false, false, false, 0},
    {"PSHUFB_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP5, false, false, false, 0},
    {"PMULLD_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     2, 10, kP01, false, false, false, 0},
    {"PADDD_XMM_MEM128", InstClass::SimdInt, OperandKind::Xmm,
     2, 6, kLoadPorts, true, false, false, 0},
    {"PUNPCKLBW_XMM_XMM", InstClass::SimdInt, OperandKind::Xmm,
     1, 1, kP5, false, false, false, 0},
    {"ADDPS_XMM_XMM", InstClass::SimdFp, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"ADDPD_XMM_XMM", InstClass::SimdFp, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"MULPD_XMM_XMM", InstClass::SimdFp, OperandKind::Xmm,
     1, 4, kP01, false, false, false, 0},
    {"DIVPD_XMM_XMM", InstClass::SimdFp, OperandKind::Xmm,
     1, 14, kP0, false, false, false, 0},
    {"CVTSI2SD_XMM_GPR64", InstClass::Convert, OperandKind::Xmm,
     2, 6, kP01, false, false, false, 0},
    {"CVTTSD2SI_GPR64_XMM", InstClass::Convert, OperandKind::Xmm,
     2, 6, kP01, false, false, false, 0},

    // ---- control flow -------------------------------------------------
    {"JMP_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP6, false, false, true, 0},
    {"JZ_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP06, false, false, true, 0},
    {"JNZ_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP06, false, false, true, 0},
    {"JL_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP06, false, false, true, 0},
    {"JNB_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP06, false, false, true, 0},
    {"JLE_RELBR", InstClass::Control, OperandKind::None,
     1, 1, kP06, false, false, true, 0},
    {"CALL_NEAR_RELBR", InstClass::Control, OperandKind::None,
     2, 2, kP6 | kStorePorts, false, true, true, 0},
    {"RET_NEAR", InstClass::Control, OperandKind::None,
     2, 2, kP6 | kLoadPorts, true, false, true, 0},
    {"JMP_MEM64", InstClass::Control, OperandKind::Mem,
     2, 5, kP6 | kLoadPorts, true, false, true, 0},

    // ---- LOCK-prefixed atomics ---------------------------------------
    {"LOCK_ADD_MEM64_GPR64", InstClass::Lock, OperandKind::Mem,
     8, 18, kLoadPorts, true, true, false, 0},
    {"LOCK_XADD_MEM64_GPR64", InstClass::Lock, OperandKind::Mem,
     9, 20, kLoadPorts, true, true, false, 0},
    {"LOCK_CMPXCHG_MEM64_GPR64", InstClass::Lock, OperandKind::Mem,
     10, 20, kLoadPorts, true, true, false, 0},
    {"LOCK_DEC_MEM32", InstClass::Lock, OperandKind::Mem,
     8, 18, kLoadPorts, true, true, false, 0},
    {"XCHG_MEM64_GPR64", InstClass::Lock, OperandKind::Mem,
     8, 18, kLoadPorts, true, true, false, 0},

    // ---- REP string operations ----------------------------------------
    // Dynamic cost: latency + repPerElem * ceil(count / 16 bytes).
    {"REP_MOVSB", InstClass::RepString, OperandKind::Mem,
     4, 20, kLoadPorts, true, true, false, 1},
    {"REP_STOSB", InstClass::RepString, OperandKind::Mem,
     3, 16, kStorePorts, false, true, false, 1},
    {"REPNE_SCASB", InstClass::RepString, OperandKind::Mem,
     4, 16, kLoadPorts, true, false, false, 2},
    {"REP_CMPSB", InstClass::RepString, OperandKind::Mem,
     5, 18, kLoadPorts, true, false, false, 2},

    // ---- fixed-port specialty ops ---------------------------------------
    {"CRC32_GPR64_GPR64", InstClass::Crc, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"CRC32_GPR64_MEM64", InstClass::Crc, OperandKind::Gpr,
     2, 7, kP1 | kLoadPorts, true, false, false, 0},
    {"POPCNT_GPR64_GPR64", InstClass::Crc, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"LZCNT_GPR64_GPR64", InstClass::Crc, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"TZCNT_GPR64_GPR64", InstClass::Crc, OperandKind::Gpr,
     1, 3, kP1, false, false, false, 0},
    {"BSWAP_GPR64", InstClass::Crc, OperandKind::Gpr,
     1, 2, kP1 | kP5, false, false, false, 0},

    // ---- nop / system ----------------------------------------------------
    {"NOP", InstClass::Nop, OperandKind::None,
     1, 1, kAluPorts, false, false, false, 0},
    {"PAUSE", InstClass::Nop, OperandKind::None,
     4, 40, kP0 | kP5, false, false, false, 0},
    {"RDTSC", InstClass::System, OperandKind::None,
     15, 25, kP0, false, false, false, 0},
    {"CPUID", InstClass::System, OperandKind::None,
     30, 100, kP0, false, false, false, 0},
    {"SYSCALL", InstClass::System, OperandKind::None,
     20, 80, kP0, false, false, false, 0},
    {"MFENCE", InstClass::System, OperandKind::None,
     4, 33, kStorePorts, false, false, false, 0},
    {"LFENCE", InstClass::System, OperandKind::None,
     2, 6, kP6, false, false, false, 0},
};

} // namespace

const Isa &
Isa::instance()
{
    static const Isa isa;
    return isa;
}

Isa::Isa()
{
    table_.reserve(std::size(kTable));
    for (const Row &r : kTable) {
        table_.push_back(InstInfo{r.iform, r.cls, r.op, r.uops, r.lat,
                                  r.ports, r.load, r.store, r.branch,
                                  r.rep});
    }
}

namespace {

const std::unordered_map<std::string_view, Opcode> &
iformIndex()
{
    static const std::unordered_map<std::string_view, Opcode> index =
        [] {
            std::unordered_map<std::string_view, Opcode> m;
            const Isa &isa = Isa::instance();
            for (Opcode i = 0; i < isa.size(); ++i)
                m.emplace(isa.info(i).iform, i);
            return m;
        }();
    return index;
}

} // namespace

Opcode
Isa::opcode(std::string_view iform) const
{
    Opcode out = 0;
    if (!tryOpcode(iform, out)) {
        std::fprintf(stderr, "unknown iform: %.*s\n",
                     static_cast<int>(iform.size()), iform.data());
        std::abort();
    }
    return out;
}

bool
Isa::tryOpcode(std::string_view iform, Opcode &out) const
{
    const auto &index = iformIndex();
    const auto it = index.find(iform);
    if (it == index.end())
        return false;
    out = it->second;
    return true;
}

std::vector<Opcode>
Isa::opcodesOfClass(InstClass cls) const
{
    std::vector<Opcode> out;
    for (Opcode i = 0; i < table_.size(); ++i) {
        if (table_[i].cls == cls)
            out.push_back(i);
    }
    return out;
}

std::string_view
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::DataMove: return "DataMove";
      case InstClass::IntArith: return "IntArith";
      case InstClass::IntMul: return "IntMul";
      case InstClass::IntDiv: return "IntDiv";
      case InstClass::Logic: return "Logic";
      case InstClass::Shift: return "Shift";
      case InstClass::FpArith: return "FpArith";
      case InstClass::FpMul: return "FpMul";
      case InstClass::FpDiv: return "FpDiv";
      case InstClass::SimdInt: return "SimdInt";
      case InstClass::SimdFp: return "SimdFp";
      case InstClass::Control: return "Control";
      case InstClass::Lock: return "Lock";
      case InstClass::RepString: return "RepString";
      case InstClass::Crc: return "Crc";
      case InstClass::Nop: return "Nop";
      case InstClass::Convert: return "Convert";
      case InstClass::System: return "System";
    }
    return "?";
}

std::string_view
operandKindName(OperandKind kind)
{
    switch (kind) {
      case OperandKind::Gpr: return "Gpr";
      case OperandKind::X87: return "X87";
      case OperandKind::Xmm: return "Xmm";
      case OperandKind::Mem: return "Mem";
      case OperandKind::None: return "None";
    }
    return "?";
}

} // namespace ditto::hw
