#include "hw/block_builder.h"

#include <algorithm>

#include "sim/distributions.h"

namespace ditto::hw {

MixWeights
MixWeights::serverCode()
{
    MixWeights w;
    w.move = 0.34;
    w.arith = 0.30;
    w.logic = 0.09;
    w.shift = 0.03;
    w.mul = 0.01;
    return w;
}

MixWeights
MixWeights::hashCode()
{
    MixWeights w;
    w.move = 0.26;
    w.arith = 0.26;
    w.logic = 0.12;
    w.shift = 0.08;
    w.mul = 0.05;
    w.crc = 0.06;
    return w;
}

MixWeights
MixWeights::parserCode()
{
    MixWeights w;
    w.move = 0.30;
    w.arith = 0.34;
    w.logic = 0.10;
    w.shift = 0.04;
    w.simd = 0.03;  // SSE scanning (memchr-style)
    return w;
}

MixWeights
MixWeights::numericCode()
{
    MixWeights w;
    w.move = 0.24;
    w.arith = 0.20;
    w.logic = 0.04;
    w.shift = 0.02;
    w.mul = 0.04;
    w.fp = 0.18;
    w.simd = 0.10;
    w.div = 0.01;
    return w;
}

namespace {

/** Pick a register-only opcode for a class bucket. */
Opcode
pickRegOpcode(const Isa &isa, sim::Rng &rng, int bucket)
{
    static const char *const kMove[] = {
        "MOV_GPR64_GPR64", "MOV_GPR64_IMM64", "MOV_GPR32_GPR32",
        "LEA_GPR64_AGEN", "CMOVZ_GPR64_GPR64", "CMOVNZ_GPR64_GPR64",
    };
    static const char *const kArith[] = {
        "ADD_GPR64_GPR64", "ADD_GPR64_IMM32", "SUB_GPR64_GPR64",
        "INC_GPR64", "DEC_GPR64", "CMP_GPR64_GPR64", "CMP_GPR64_IMM32",
        "TEST_GPR64_GPR64", "NEG_GPR64",
    };
    static const char *const kLogic[] = {
        "AND_GPR64_GPR64", "OR_GPR64_GPR64", "XOR_GPR64_GPR64",
        "XOR_GPR32_GPR32", "NOT_GPR64",
    };
    static const char *const kShift[] = {
        "SHL_GPR64_IMM8", "SHR_GPR64_IMM8", "SAR_GPR64_IMM8",
        "ROL_GPR64_IMM8",
    };
    static const char *const kMul[] = {
        "IMUL_GPR64_GPR64", "IMUL_GPR32_GPR32", "MUL_GPR64",
    };
    static const char *const kDiv[] = {
        "DIV_GPR64", "IDIV_GPR32",
    };
    static const char *const kFp[] = {
        "ADDSD_XMM_XMM", "SUBSD_XMM_XMM", "MULSD_XMM_XMM",
        "UCOMISD_XMM_XMM", "CVTSI2SD_XMM_GPR64", "DIVSD_XMM_XMM",
    };
    static const char *const kSimd[] = {
        "PADDQ_XMM_XMM", "PXOR_XMM_XMM", "PCMPEQB_XMM_XMM",
        "PMOVMSKB_GPR32_XMM", "PSHUFB_XMM_XMM", "POR_XMM_XMM",
    };
    static const char *const kCrc[] = {
        "CRC32_GPR64_GPR64", "POPCNT_GPR64_GPR64", "TZCNT_GPR64_GPR64",
        "BSWAP_GPR64",
    };
    static const char *const kLock[] = {
        "LOCK_ADD_MEM64_GPR64", "LOCK_XADD_MEM64_GPR64",
        "LOCK_CMPXCHG_MEM64_GPR64",
    };

    auto pick = [&](const char *const *names, std::size_t n) {
        return isa.opcode(names[rng.uniformInt(n)]);
    };
    switch (bucket) {
      case 0: return pick(kMove, std::size(kMove));
      case 1: return pick(kArith, std::size(kArith));
      case 2: return pick(kLogic, std::size(kLogic));
      case 3: return pick(kShift, std::size(kShift));
      case 4: return pick(kMul, std::size(kMul));
      case 5: return pick(kDiv, std::size(kDiv));
      case 6: return pick(kFp, std::size(kFp));
      case 7: return pick(kSimd, std::size(kSimd));
      case 8: return pick(kCrc, std::size(kCrc));
      case 9: return pick(kLock, std::size(kLock));
      default: return isa.opcode("NOP");
    }
}

/** Pick a memory-operand opcode: load or store. */
Opcode
pickMemOpcode(const Isa &isa, sim::Rng &rng, bool store)
{
    static const char *const kLoads[] = {
        "MOV_GPR64_MEM64", "MOV_GPR32_MEM32", "MOVZX_GPR64_MEM8",
        "ADD_GPR64_MEM64", "CMP_GPR64_MEM64", "AND_GPR64_MEM64",
        "SUB_GPR64_MEM64",
    };
    static const char *const kStores[] = {
        "MOV_MEM64_GPR64", "MOV_MEM32_GPR32",
    };
    if (store)
        return isa.opcode(kStores[rng.uniformInt(std::size(kStores))]);
    return isa.opcode(kLoads[rng.uniformInt(std::size(kLoads))]);
}

bool
usesXmm(const InstInfo &info)
{
    return info.operands == OperandKind::Xmm;
}

} // namespace

CodeBlock
buildBlock(const BlockSpec &spec)
{
    const Isa &isa = Isa::instance();
    sim::Rng rng(spec.seed ^ 0xd177000000ull);

    CodeBlock block;
    block.label = spec.label;

    // Streams: default to one 4KB sequential stream if none given.
    std::vector<StreamSpec> streams = spec.streams;
    if (streams.empty())
        streams.push_back(StreamSpec{});
    sim::EmpiricalDist streamPick;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        block.streams.push_back(MemStreamDesc{
            roundUpPow2(streams[i].wsBytes), streams[i].kind,
            streams[i].shared, 1});
        streamPick.add(static_cast<std::int64_t>(i), streams[i].weight);
    }

    // Branch sites: allocate one descriptor per branch instruction so
    // each static site has its own pattern counter (like real code).
    sim::EmpiricalDist classPick;
    const double weights[] = {
        spec.mix.move, spec.mix.arith, spec.mix.logic, spec.mix.shift,
        spec.mix.mul, spec.mix.div, spec.mix.fp, spec.mix.simd,
        spec.mix.crc, spec.mix.lock,
    };
    for (int i = 0; i < 10; ++i)
        classPick.add(i, weights[i]);

    // Recent destination registers, for dependency tightness. GPR
    // r0..r11 are general; r12-r15 reserved (loop counters / bases),
    // mirroring the paper's reserved-register convention.
    std::vector<std::uint8_t> recentGpr = {0};
    std::vector<std::uint8_t> recentXmm = {kXmmBase};
    constexpr std::uint8_t kUsableGprs = 12;

    auto pick_src = [&](bool xmm) -> std::uint8_t {
        auto &recent = xmm ? recentXmm : recentGpr;
        if (!recent.empty() && rng.bernoulli(spec.depTightness)) {
            // Recently written register: short RAW distance.
            const std::size_t window =
                std::min<std::size_t>(recent.size(), 4);
            return recent[recent.size() - 1 - rng.uniformInt(window)];
        }
        if (xmm)
            return kXmmBase +
                static_cast<std::uint8_t>(rng.uniformInt(kNumXmms));
        return static_cast<std::uint8_t>(rng.uniformInt(kUsableGprs));
    };
    auto pick_dst = [&](bool xmm) -> std::uint8_t {
        std::uint8_t reg;
        if (xmm) {
            reg = kXmmBase +
                static_cast<std::uint8_t>(rng.uniformInt(kNumXmms));
            recentXmm.push_back(reg);
            if (recentXmm.size() > 8)
                recentXmm.erase(recentXmm.begin());
        } else {
            reg = static_cast<std::uint8_t>(rng.uniformInt(kUsableGprs));
            recentGpr.push_back(reg);
            if (recentGpr.size() > 8)
                recentGpr.erase(recentGpr.begin());
        }
        return reg;
    };

    for (unsigned i = 0; i < spec.instCount; ++i) {
        Inst inst;
        const double roll = rng.uniform();
        if (roll < spec.branchFraction && !spec.branchKinds.empty()) {
            // Conditional branch with its own pattern descriptor.
            inst.opcode = isa.opcode(
                rng.bernoulli(0.5) ? "JZ_RELBR" : "JNZ_RELBR");
            BranchDesc desc = spec.branchKinds[
                rng.uniformInt(spec.branchKinds.size())];
            inst.branch = static_cast<std::uint16_t>(
                block.branches.size());
            block.branches.push_back(desc);
            inst.src0 = pick_src(false);
        } else if (roll < spec.branchFraction + spec.memFraction) {
            const bool store = rng.bernoulli(spec.storeFraction);
            inst.opcode = pickMemOpcode(isa, rng, store);
            inst.memStream = static_cast<std::uint16_t>(
                streamPick.sample(rng));
            if (store) {
                inst.src0 = pick_src(false);
            } else {
                inst.dst = pick_dst(false);
                inst.src0 = pick_src(false);
            }
        } else {
            const int bucket = static_cast<int>(classPick.sample(rng));
            inst.opcode = pickRegOpcode(isa, rng, bucket);
            const InstInfo &info = isa.info(inst.opcode);
            const bool xmm = usesXmm(info);
            // LOCK forms also need a (shared) stream.
            if (info.isLoad || info.isStore) {
                inst.memStream = static_cast<std::uint16_t>(
                    streamPick.sample(rng));
            }
            inst.src0 = pick_src(xmm);
            if (rng.bernoulli(0.6))
                inst.src1 = pick_src(xmm);
            inst.dst = pick_dst(xmm);
        }
        block.insts.push_back(inst);
    }

    return block;
}

} // namespace ditto::hw
