/**
 * @file
 * Branch direction generation and prediction.
 *
 * Direction sequences follow the paper's bitmask construction
 * (Sec. 4.4.3): a branch with taken-rate 2^-M and transition-rate
 * 2^-N produces a periodic pattern equivalent to
 * `test r8d, BITMASK; jz`. Prediction uses a gshare predictor with a
 * finite pattern-history table, so prediction accuracy degrades with
 * static branch count and instruction footprint (aliasing), which the
 * paper identifies as significant contributors.
 */

#ifndef DITTO_HW_BRANCH_PREDICTOR_H_
#define DITTO_HW_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "hw/code.h"

namespace ditto::hw {

/**
 * Deterministic direction sequence for a BranchDesc.
 *
 * Pattern period is 2^(N+1) executions containing a single taken run,
 * giving taken rate 2^-M and transition rate 2^-N (two transitions
 * per period). When M > N+1 the taken run would be sub-unit, so the
 * period stretches to 2^M with a single taken execution (the
 * transition rate saturates -- same saturation as the quantized
 * bitmask in the paper).
 */
class BranchPattern
{
  public:
    /** Direction of the `count`-th execution (0-based). */
    static bool direction(const BranchDesc &desc, std::uint64_t count);

    /** Exact long-run taken rate of the generated pattern. */
    static double takenRate(const BranchDesc &desc);

    /** Exact long-run transition rate of the generated pattern. */
    static double transitionRate(const BranchDesc &desc);
};

/**
 * gshare predictor: PHT of 2-bit saturating counters indexed by
 * (pc ^ global history).
 */
class BranchPredictor
{
  public:
    /** @param log2Entries PHT size = 2^log2Entries counters. */
    explicit BranchPredictor(unsigned log2Entries = 14,
                             unsigned historyBits = 12);

    /**
     * Predict, then update with the actual outcome.
     * @retval true when the prediction was wrong.
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

    double
    mispredictRate() const
    {
        return predictions_ ? static_cast<double>(mispredictions_) /
            static_cast<double>(predictions_) : 0.0;
    }

    void resetStats();
    void reset();

  private:
    std::vector<std::uint8_t> pht_;
    std::uint64_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

} // namespace ditto::hw

#endif // DITTO_HW_BRANCH_PREDICTOR_H_
