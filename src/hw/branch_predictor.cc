#include "hw/branch_predictor.h"

#include <algorithm>

namespace ditto::hw {

bool
BranchPattern::direction(const BranchDesc &desc, std::uint64_t count)
{
    const unsigned m = std::clamp<unsigned>(desc.takenExp, 0, 30);
    const unsigned n = std::clamp<unsigned>(desc.transExp, 1, 30);
    if (m == 0)
        return true;  // taken rate 1.0
    if (m > n + 1) {
        // Saturated: one taken execution per 2^M period.
        const std::uint64_t period = std::uint64_t{1} << m;
        return (count % period) == 0;
    }
    const std::uint64_t period = std::uint64_t{1} << (n + 1);
    const std::uint64_t takenRun = std::uint64_t{1} << (n + 1 - m);
    return (count % period) < takenRun;
}

double
BranchPattern::takenRate(const BranchDesc &desc)
{
    const unsigned m = std::clamp<unsigned>(desc.takenExp, 0, 30);
    return 1.0 / static_cast<double>(std::uint64_t{1} << m);
}

double
BranchPattern::transitionRate(const BranchDesc &desc)
{
    const unsigned m = std::clamp<unsigned>(desc.takenExp, 0, 30);
    const unsigned n = std::clamp<unsigned>(desc.transExp, 1, 30);
    if (m == 0)
        return 0.0;
    if (m > n + 1) {
        // Two transitions per 2^M period.
        return 2.0 / static_cast<double>(std::uint64_t{1} << m);
    }
    return 2.0 / static_cast<double>(std::uint64_t{1} << (n + 1));
}

BranchPredictor::BranchPredictor(unsigned log2Entries,
                                 unsigned historyBits)
    : pht_(std::size_t{1} << log2Entries, 1),
      mask_((std::uint64_t{1} << log2Entries) - 1),
      historyMask_((std::uint64_t{1} << historyBits) - 1)
{
}

bool
BranchPredictor::predictAndUpdate(std::uint64_t pc, bool taken)
{
    // Hash the pc down to line+offset entropy; xor with history.
    std::uint64_t h = pc >> 2;
    h ^= h >> 17;
    const std::uint64_t index = (h ^ history_) & mask_;
    std::uint8_t &counter = pht_[index];
    const bool predictTaken = counter >= 2;

    ++predictions_;
    const bool mispredict = predictTaken != taken;
    if (mispredict)
        ++mispredictions_;

    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return mispredict;
}

void
BranchPredictor::resetStats()
{
    predictions_ = 0;
    mispredictions_ = 0;
}

void
BranchPredictor::reset()
{
    std::fill(pht_.begin(), pht_.end(), 1);
    history_ = 0;
    resetStats();
}

} // namespace ditto::hw
