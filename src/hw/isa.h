/**
 * @file
 * x86-like instruction set metadata.
 *
 * The machine model interprets programs expressed over a table of
 * "iforms" -- instruction forms in the spirit of Intel XED, which is
 * what Intel SDE reports and what Ditto's instruction-mix analysis
 * clusters (Sec. 4.4.2). Each iform carries the microarchitectural
 * attributes the cost model and the clusterer need: uop count,
 * latency, execution-port set, functional class, and operand kind.
 *
 * Latencies/ports approximate Skylake numbers from uops.info and
 * Agner Fog's tables; exact silicon fidelity is not the goal -- a
 * *consistent* cost structure that differentiates iforms the same way
 * real hardware does is (e.g. CRC32 is 3 cycles on port 1 only, plain
 * integer ALU is 1 cycle on any of 4 ports, REP/LOCK forms cost tens
 * of cycles).
 */

#ifndef DITTO_HW_ISA_H_
#define DITTO_HW_ISA_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace ditto::hw {

/** Functional class of an iform (Ditto clustering feature 1). */
enum class InstClass : std::uint8_t
{
    DataMove,   //!< mov/movzx/lea/cmov/push/pop
    IntArith,   //!< add/sub/inc/cmp/test/neg
    IntMul,     //!< imul/mul
    IntDiv,     //!< idiv/div
    Logic,      //!< and/or/xor/not
    Shift,      //!< shl/shr/sar/rol/ror
    FpArith,    //!< x87/scalar SSE add/sub/cmp
    FpMul,      //!< scalar SSE mul
    FpDiv,      //!< scalar SSE div/sqrt
    SimdInt,    //!< packed integer SSE/AVX
    SimdFp,     //!< packed FP SSE/AVX
    Control,    //!< jmp/jcc/call/ret
    Lock,       //!< LOCK-prefixed RMW
    RepString,  //!< REP MOVS/STOS/SCAS
    Crc,        //!< crc32 and friends (fixed-port specialty ops)
    Nop,        //!< nop/pause
    Convert,    //!< cvt* int<->fp
    System,     //!< syscall/rdtsc/cpuid
};

/** Dominant operand kind (Ditto clustering feature 2). */
enum class OperandKind : std::uint8_t
{
    Gpr,   //!< general purpose registers
    X87,   //!< x87 floating point stack
    Xmm,   //!< XMM/YMM vector registers
    Mem,   //!< memory operand dominates (e.g. string ops)
    None,  //!< no operands (nop, rdtsc)
};

/** Execution-port bitmask, Skylake-style ports 0..7. */
enum PortMask : std::uint8_t
{
    kPort0 = 1 << 0,
    kPort1 = 1 << 1,
    kPort2 = 1 << 2,  //!< load AGU
    kPort3 = 1 << 3,  //!< load AGU
    kPort4 = 1 << 4,  //!< store data
    kPort5 = 1 << 5,
    kPort6 = 1 << 6,
    kPort7 = 1 << 7,  //!< store AGU
};

/** Number of execution ports modeled. */
inline constexpr int kNumPorts = 8;

/** Static metadata describing one iform. */
struct InstInfo
{
    std::string_view iform;  //!< XED-style name, e.g. "ADD_GPR64_GPR64"
    InstClass cls;
    OperandKind operands;
    std::uint8_t uops;       //!< fused-domain uop count
    std::uint8_t latency;    //!< result latency in cycles
    std::uint8_t ports;      //!< PortMask of issueable ports
    bool isLoad;
    bool isStore;
    bool isBranch;
    /**
     * Extra cycles per repeat element for RepString forms; zero
     * otherwise. The dynamic cost is latency + repPerElem * count.
     */
    std::uint8_t repPerElem;
};

/** Opcode: dense index into the iform table. */
using Opcode = std::uint16_t;

/**
 * The global iform table.
 *
 * Singleton by design: the table is immutable machine metadata, and
 * every component (apps, profilers, generators) must agree on opcode
 * indices.
 */
class Isa
{
  public:
    /** The process-wide table. */
    static const Isa &instance();

    /** Number of iforms. */
    std::size_t size() const { return table_.size(); }

    /** Metadata for an opcode. */
    const InstInfo &info(Opcode op) const { return table_[op]; }

    /** Look up an opcode by iform name; aborts on unknown names. */
    Opcode opcode(std::string_view iform) const;

    /** Look up an opcode; returns false when the iform is unknown. */
    bool tryOpcode(std::string_view iform, Opcode &out) const;

    /** All opcodes of a given class. */
    std::vector<Opcode> opcodesOfClass(InstClass cls) const;

    /** True when the opcode references memory (load or store). */
    bool
    touchesMemory(Opcode op) const
    {
        const InstInfo &i = info(op);
        return i.isLoad || i.isStore;
    }

  private:
    Isa();

    std::vector<InstInfo> table_;
};

/** Human-readable class name (for reports and tests). */
std::string_view instClassName(InstClass cls);

/** Human-readable operand-kind name. */
std::string_view operandKindName(OperandKind kind);

} // namespace ditto::hw

#endif // DITTO_HW_ISA_H_
