/**
 * @file
 * Procedural authoring of CodeBlocks.
 *
 * Hand-written components of the simulated world (the kernel's
 * syscall paths, the "original" applications' request handlers) are
 * generated from high-level specs: instruction count, class mix,
 * memory streams, branch behaviour, and dependency tightness. The
 * builder is seeded and deterministic.
 *
 * Note this is NOT Ditto's generator: Ditto's BodyGenerator (in
 * src/core) builds blocks purely from profiled statistics. This
 * builder plays the role of "the original developers" writing code
 * with interesting, realistic structure for the profilers to observe.
 */

#ifndef DITTO_HW_BLOCK_BUILDER_H_
#define DITTO_HW_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/code.h"
#include "sim/rng.h"

namespace ditto::hw {

/** Weighted instruction-class mix for authored code. */
struct MixWeights
{
    double move = 0.30;
    double arith = 0.30;
    double logic = 0.08;
    double shift = 0.04;
    double mul = 0.02;
    double div = 0.0;
    double fp = 0.0;
    double simd = 0.0;
    double crc = 0.0;
    double lock = 0.0;

    /** Typical pointer-heavy server/kernel code. */
    static MixWeights serverCode();
    /** Hashing/checksum heavy code (KVS lookups). */
    static MixWeights hashCode();
    /** Parser/state-machine code (branchy, byte-wise). */
    static MixWeights parserCode();
    /** Numeric code with FP/SIMD content. */
    static MixWeights numericCode();
};

/** Data stream referenced by a block under construction. */
struct StreamSpec
{
    std::uint64_t wsBytes = 4096;
    StreamKind kind = StreamKind::Sequential;
    bool shared = false;
    /** Relative share of the block's memory operations. */
    double weight = 1.0;
};

/** Full description of a block to author. */
struct BlockSpec
{
    std::string label;
    unsigned instCount = 64;
    MixWeights mix;
    std::vector<StreamSpec> streams;
    /** Fraction of instructions carrying a memory operand. */
    double memFraction = 0.25;
    /** Of memory ops, the fraction that are stores. */
    double storeFraction = 0.3;
    /** Fraction of instructions that are conditional branches. */
    double branchFraction = 0.12;
    /** Branch behaviours to draw sites from (uniformly). */
    std::vector<BranchDesc> branchKinds = {{1, 2}, {3, 3}};
    /**
     * Dependency tightness in [0,1]: probability a source register
     * was written recently (short RAW distances limit ILP).
     */
    double depTightness = 0.35;
    std::uint64_t seed = 1;
};

/** Author a block from a spec (deterministic given the seed). */
CodeBlock buildBlock(const BlockSpec &spec);

} // namespace ditto::hw

#endif // DITTO_HW_BLOCK_BUILDER_H_
