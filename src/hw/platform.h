/**
 * @file
 * Server platform descriptions (Table 1 of the paper) plus the
 * microarchitectural knobs of the machine model.
 *
 * Three presets mirror the evaluation cluster:
 *   - Platform A: Skylake Gold 6152, 2.10 GHz, 22 cores/socket x2,
 *     1MB L2, 30.25MB LLC, SSD, 10Gbe
 *   - Platform B: Haswell E5-2660 v3, 2.60 GHz, 10 cores x2,
 *     256KB L2, 25MB LLC, HDD, 1Gbe
 *   - Platform C: Skylake E3-1240 v5, 3.50 GHz, 4 cores x1,
 *     256KB L2, 8MB LLC, HDD, 1Gbe
 */

#ifndef DITTO_HW_PLATFORM_H_
#define DITTO_HW_PLATFORM_H_

#include <cstdint>
#include <string>

#include "hw/cache.h"

namespace ditto::hw {

/** Storage device families with very different latency profiles. */
enum class DiskKind : std::uint8_t
{
    Ssd,
    Hdd,
};

/** Complete description of one server platform. */
struct PlatformSpec
{
    std::string name;
    std::string cpuModel;
    std::string cpuFamily;

    // --- CPU ---
    double baseFrequencyGhz = 2.1;
    unsigned coresPerSocket = 22;
    unsigned sockets = 2;
    bool smtEnabled = true;

    // Pipeline parameters.
    unsigned issueWidth = 4;           //!< fused uops / cycle
    unsigned mispredictPenalty = 16;   //!< cycles
    unsigned mlp = 10;                 //!< outstanding demand misses
    unsigned predictorLog2Entries = 14;
    unsigned predictorHistoryBits = 12;
    /** Fraction of an i-miss latency the frontend cannot hide. */
    double frontendStallFactor = 0.7;

    // --- memory hierarchy ---
    std::uint64_t l1iBytes = 32 * 1024;
    unsigned l1iWays = 8;
    std::uint64_t l1dBytes = 32 * 1024;
    unsigned l1dWays = 8;
    std::uint64_t l2Bytes = 1024 * 1024;
    unsigned l2Ways = 16;
    std::uint64_t llcBytes = 31719424;  //!< 30.25 MB
    unsigned llcWays = 11;
    MemLatency latency;
    bool prefetchEnabled = true;

    std::uint64_t ramBytes = 192ull * 1024 * 1024 * 1024;
    unsigned ramMhz = 2666;

    // --- devices ---
    DiskKind disk = DiskKind::Ssd;
    std::uint64_t diskBytes = 1024ull * 1024 * 1024 * 1024;
    double nicGbps = 10.0;

    /** Total hardware threads exposed to the OS model. */
    unsigned
    totalCores() const
    {
        return coresPerSocket * sockets;
    }

    /** Cycles -> nanoseconds at the configured frequency. */
    double
    cyclesToNs(double cycles) const
    {
        return cycles / baseFrequencyGhz;
    }
};

/** Table 1, Platform A (profiling + main validation platform). */
PlatformSpec platformA();

/** Table 1, Platform B (older Haswell generation). */
PlatformSpec platformB();

/** Table 1, Platform C (small single-socket Skylake). */
PlatformSpec platformC();

/** Look up a platform preset by name ("A", "B" or "C"). */
PlatformSpec platformByName(const std::string &name);

/**
 * Derive a power-management variant: override the active core count
 * and frequency (Fig. 11's core/frequency scaling study).
 */
PlatformSpec withCoresAndFrequency(const PlatformSpec &base,
                                   unsigned cores, double ghz);

} // namespace ditto::hw

#endif // DITTO_HW_PLATFORM_H_
