#include "hw/platform.h"

#include <cstdio>
#include <cstdlib>

namespace ditto::hw {

PlatformSpec
platformA()
{
    PlatformSpec p;
    p.name = "A";
    p.cpuModel = "Gold 6152";
    p.cpuFamily = "Skylake";
    p.baseFrequencyGhz = 2.10;
    p.coresPerSocket = 22;
    p.sockets = 2;
    p.issueWidth = 4;
    p.mispredictPenalty = 16;
    p.mlp = 10;
    p.predictorLog2Entries = 14;
    p.predictorHistoryBits = 12;
    p.l2Bytes = 1024 * 1024;
    p.l2Ways = 16;
    p.llcBytes = 31719424;  // 30.25 MB
    p.llcWays = 11;
    p.latency = MemLatency{4, 12, 44, 220};
    p.ramBytes = 192ull << 30;
    p.ramMhz = 2666;
    p.disk = DiskKind::Ssd;
    p.diskBytes = 1ull << 40;
    p.nicGbps = 10.0;
    return p;
}

PlatformSpec
platformB()
{
    PlatformSpec p;
    p.name = "B";
    p.cpuModel = "E5-2660 v3";
    p.cpuFamily = "Haswell";
    p.baseFrequencyGhz = 2.60;
    p.coresPerSocket = 10;
    p.sockets = 2;
    // Older generation: narrower effective issue, costlier recovery,
    // smaller predictor, fewer outstanding misses, slower memory.
    p.issueWidth = 3;
    p.mispredictPenalty = 18;
    p.mlp = 8;
    p.predictorLog2Entries = 13;
    p.predictorHistoryBits = 10;
    p.l2Bytes = 256 * 1024;
    p.l2Ways = 8;
    p.llcBytes = 25ull * 1024 * 1024;
    p.llcWays = 20;
    p.latency = MemLatency{4, 12, 36, 240};
    p.ramBytes = 128ull << 30;
    p.ramMhz = 2400;
    p.disk = DiskKind::Hdd;
    p.diskBytes = 2ull << 40;
    p.nicGbps = 1.0;
    return p;
}

PlatformSpec
platformC()
{
    PlatformSpec p;
    p.name = "C";
    p.cpuModel = "E3-1240 v5";
    p.cpuFamily = "Skylake";
    p.baseFrequencyGhz = 3.50;
    p.coresPerSocket = 4;
    p.sockets = 1;
    p.issueWidth = 4;
    p.mispredictPenalty = 16;
    p.mlp = 10;
    p.predictorLog2Entries = 14;
    p.predictorHistoryBits = 12;
    p.l2Bytes = 256 * 1024;
    p.l2Ways = 4;
    p.llcBytes = 8ull * 1024 * 1024;
    p.llcWays = 16;
    p.latency = MemLatency{4, 12, 34, 200};
    p.ramBytes = 32ull << 30;
    p.ramMhz = 2133;
    p.disk = DiskKind::Hdd;
    p.diskBytes = 1ull << 40;
    p.nicGbps = 1.0;
    return p;
}

PlatformSpec
platformByName(const std::string &name)
{
    if (name == "A" || name == "a")
        return platformA();
    if (name == "B" || name == "b")
        return platformB();
    if (name == "C" || name == "c")
        return platformC();
    std::fprintf(stderr, "unknown platform: %s\n", name.c_str());
    std::abort();
}

PlatformSpec
withCoresAndFrequency(const PlatformSpec &base, unsigned cores,
                      double ghz)
{
    PlatformSpec p = base;
    p.coresPerSocket = cores;
    p.sockets = 1;
    p.baseFrequencyGhz = ghz;
    return p;
}

} // namespace ditto::hw
