#include "hw/cpu_core.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ditto::hw {

void
ExecStats::add(const ExecStats &other, double scale)
{
    instructions += other.instructions * scale;
    uops += other.uops * scale;
    cycles += other.cycles * scale;
    branches += other.branches * scale;
    mispredicts += other.mispredicts * scale;
    l1iAccesses += other.l1iAccesses * scale;
    l1iMisses += other.l1iMisses * scale;
    l1dAccesses += other.l1dAccesses * scale;
    l1dMisses += other.l1dMisses * scale;
    l2Accesses += other.l2Accesses * scale;
    l2Misses += other.l2Misses * scale;
    llcAccesses += other.llcAccesses * scale;
    llcMisses += other.llcMisses * scale;
    loads += other.loads * scale;
    stores += other.stores * scale;
    retiringCycles += other.retiringCycles * scale;
    frontendCycles += other.frontendCycles * scale;
    badSpecCycles += other.badSpecCycles * scale;
    backendCycles += other.backendCycles * scale;
    kernelInstructions += other.kernelInstructions * scale;
    kernelCycles += other.kernelCycles * scale;
    parallelMissCycles += other.parallelMissCycles * scale;
    serializedMissCycles += other.serializedMissCycles * scale;
}

ExecContext::ExecContext(unsigned threadSlot, std::uint64_t seed)
    : threadSlot_(threadSlot), rng_(seed ^ (threadSlot * 0x9e3779b9ull))
{
}

ExecContext::BlockRt &
ExecContext::blockRt(const void *blockKey, std::size_t streams,
                     std::size_t branches)
{
    BlockRt &rt = rt_[blockKey];
    if (rt.streamCursor.size() != streams) {
        rt.streamCursor.assign(streams, 0);
        rt.streamLcg.assign(streams, 1);
    }
    if (rt.branchCount.size() != branches)
        rt.branchCount.assign(branches, 0);
    return rt;
}

CpuCore::CpuCore(unsigned id, const PlatformSpec &spec,
                 CacheHierarchy &caches, CoherenceDomain *coherence)
    : id_(id), spec_(spec), caches_(&caches),
      predictor_(spec.predictorLog2Entries, spec.predictorHistoryBits),
      coherence_(coherence)
{
}

void
CpuCore::setObserver(ExecObserver *observer)
{
    observer_ = observer;
}

void
CpuCore::contextSwitch(std::uint64_t salt)
{
    // Direct cost is charged by the scheduler; here we model the
    // indirect cost: private-cache pollution from the other task.
    caches_->pollute(0.30, salt);
}

std::uint64_t
CpuCore::nextStreamAddr(const CodeImage::LinkedStream &stream,
                        ExecContext &ctx, ExecContext::BlockRt &rt,
                        std::size_t streamIdx)
{
    const std::uint64_t wsLines =
        std::max<std::uint64_t>(1, stream.desc.wsBytes / kLineBytes);
    std::uint64_t &cursor = rt.streamCursor[streamIdx];
    std::uint64_t line = 0;

    switch (stream.desc.kind) {
      case StreamKind::Sequential:
        line = cursor;
        cursor = (cursor + 1) % wsLines;
        break;
      case StreamKind::Strided:
        line = cursor;
        cursor = (cursor + std::max<std::uint32_t>(1, stream.desc.stride))
            % wsLines;
        break;
      case StreamKind::PointerChase: {
        // Full-period LCG over the pow-2 line count: a = 5 (== 1 mod 4),
        // odd increment -> a maximal-period permutation walk, which is
        // unprefetchable and serializes on the load like real chasing.
        std::uint64_t &x = rt.streamLcg[streamIdx];
        x = (x * 5 + 13) & (wsLines - 1);
        line = x;
        break;
      }
      case StreamKind::Random:
        line = ctx.rng().uniformInt(wsLines);
        break;
    }

    const unsigned slot = stream.perThreadSpan
        ? ctx.threadSlot() : 0;
    return stream.base + slot * stream.perThreadSpan +
        line * kLineBytes;
}

void
CpuCore::runPhase(const CodeImage &image,
                  const CodeImage::LinkedBlock &block,
                  std::uint64_t iterations, ExecContext &ctx,
                  ExecStats &out)
{
    const Isa &isa = Isa::instance();
    const CodeBlock &code = block.code;
    ExecContext::BlockRt &rt = ctx.blockRt(
        &block, code.streams.size(), code.branches.size());

    const MemLatency &lat = spec_.latency;

    double regReady[kNumRegs] = {};
    double portLoad[kNumPorts] = {};
    // Pointer-chase streams serialize through memory: each access
    // depends on the previous one's loaded value (mov r11, [r11]).
    std::vector<double> chainReady(code.streams.size(), 0.0);
    double critPath = 0;
    double parallelMissCycles = 0;
    double frontendStall = 0;
    double badSpec = 0;
    double totalUops = 0;

    const std::uint64_t iLines = std::max<std::uint64_t>(
        1, (code.iFootprintBytes() + kLineBytes - 1) / kLineBytes);

    for (std::uint64_t it = 0; it < iterations; ++it) {
        // ---- instruction fetch over the block's footprint --------------
        for (std::uint64_t l = 0; l < iLines; ++l) {
            const std::uint64_t addr = block.iBase + l * kLineBytes;
            const CacheLevel level = caches_->accessInst(addr);
            out.l1iAccesses += 1;
            if (level != CacheLevel::L1) {
                out.l1iMisses += 1;
                out.l2Accesses += 1;
                if (level != CacheLevel::L2) {
                    out.l2Misses += 1;
                    out.llcAccesses += 1;
                    if (level != CacheLevel::L3)
                        out.llcMisses += 1;
                }
                frontendStall += (lat.of(level) - lat.l1) *
                    spec_.frontendStallFactor;
            }
            if (observer_)
                observer_->onInstFetch(addr);
        }

        // ---- execute the instruction sequence ---------------------------
        for (std::size_t idx = 0; idx < code.insts.size(); ++idx) {
            const Inst &inst = code.insts[idx];
            const InstInfo &info = isa.info(inst.opcode);

            out.instructions += 1;
            double uops = info.uops;
            double effLat = info.latency;

            // REP string forms scale with the repeat count.
            std::uint64_t memTouches = 1;
            if (info.repPerElem && inst.repBytes) {
                const std::uint64_t chunks = (inst.repBytes + 15) / 16;
                effLat += static_cast<double>(info.repPerElem) *
                    static_cast<double>(chunks);
                uops += static_cast<double>(chunks) / 2.0;
                memTouches = (inst.repBytes + kLineBytes - 1) /
                    kLineBytes;
            }
            out.uops += uops;
            totalUops += uops;

            // Memory operand.
            if (inst.memStream != kNoStream &&
                inst.memStream < block.streamIds.size()) {
                const auto &stream = image.stream(
                    block.streamIds[inst.memStream]);
                for (std::uint64_t t = 0; t < memTouches; ++t) {
                    const std::uint64_t addr = nextStreamAddr(
                        stream, ctx, rt, inst.memStream);
                    const CacheLevel level =
                        caches_->accessData(addr, info.isStore);
                    out.l1dAccesses += 1;
                    if (info.isLoad)
                        out.loads += 1;
                    if (info.isStore)
                        out.stores += 1;
                    if (level != CacheLevel::L1) {
                        out.l1dMisses += 1;
                        out.l2Accesses += 1;
                        if (level != CacheLevel::L2) {
                            out.l2Misses += 1;
                            out.llcAccesses += 1;
                            if (level != CacheLevel::L3)
                                out.llcMisses += 1;
                        }
                        const double extra = lat.of(level) - lat.l1;
                        if (info.isLoad &&
                            stream.desc.kind == StreamKind::PointerChase) {
                            // Serialized: enters the dependency chain.
                            effLat += extra;
                            out.serializedMissCycles += extra;
                        } else if (info.isLoad) {
                            parallelMissCycles += extra;
                            out.parallelMissCycles += extra;
                        } else {
                            // Store misses mostly hidden by the store
                            // buffer; a fraction backs up.
                            parallelMissCycles += extra * 0.3;
                            out.parallelMissCycles += extra * 0.3;
                        }
                    }
                    if (stream.desc.shared && coherence_) {
                        if (info.isStore)
                            coherence_->sharedWrite(id_, addr);
                        else
                            coherence_->sharedRead(id_, addr);
                    }
                    if (observer_) {
                        observer_->onDataAccess(addr, info.isStore,
                                                stream.desc.shared);
                    }
                }
            }

            // Register dataflow critical path.
            double ready = 0;
            if (inst.src0 != kNoReg)
                ready = std::max(ready, regReady[inst.src0]);
            if (inst.src1 != kNoReg)
                ready = std::max(ready, regReady[inst.src1]);
            const bool chased = inst.memStream != kNoStream &&
                inst.memStream < code.streams.size() &&
                code.streams[inst.memStream].kind ==
                    StreamKind::PointerChase;
            if (chased)
                ready = std::max(ready, chainReady[inst.memStream]);
            const double done = ready + effLat;
            if (chased)
                chainReady[inst.memStream] = done;
            if (inst.dst != kNoReg)
                regReady[inst.dst] = done;
            critPath = std::max(critPath, done);

            // Port pressure: greedy least-loaded among allowed ports.
            if (info.ports) {
                for (unsigned u = 0;
                     u < static_cast<unsigned>(uops + 0.5); ++u) {
                    int best = -1;
                    for (int p = 0; p < kNumPorts; ++p) {
                        if (!(info.ports & (1u << p)))
                            continue;
                        if (best < 0 || portLoad[p] < portLoad[best])
                            best = p;
                    }
                    if (best >= 0)
                        portLoad[best] += 1;
                }
            }

            // Conditional branch.
            if (inst.branch != kNoBranch &&
                inst.branch < code.branches.size()) {
                const BranchDesc &desc = code.branches[inst.branch];
                const std::uint64_t cnt = rt.branchCount[inst.branch]++;
                const bool taken = BranchPattern::direction(desc, cnt);
                const std::uint64_t pc = block.iBase + idx * kInstBytes;
                const bool mis = predictor_.predictAndUpdate(pc, taken);
                out.branches += 1;
                if (mis) {
                    out.mispredicts += 1;
                    badSpec += spec_.mispredictPenalty;
                }
                if (observer_)
                    observer_->onBranch(pc, taken);
            }

            if (observer_)
                observer_->onInst(inst, info);
        }
    }

    // ---- assemble the cycle count and top-down buckets -----------------
    const double retiring = totalUops /
        static_cast<double>(std::max(1u, spec_.issueWidth));
    double portBound = 0;
    for (double p : portLoad)
        portBound = std::max(portBound, p);
    const double coreBound = std::max({retiring, portBound, critPath});
    const double memStall = parallelMissCycles /
        static_cast<double>(std::max(1u, spec_.mlp));

    const double backend = (coreBound - retiring) + memStall;
    double cycles = retiring + backend + frontendStall + badSpec;
    cycles *= contention_;

    out.retiringCycles += retiring * contention_;
    out.backendCycles += backend * contention_;
    out.frontendCycles += frontendStall * contention_;
    out.badSpecCycles += badSpec * contention_;
    out.cycles += cycles;
}

double
CpuCore::run(const CodeImage &image, std::uint32_t blockId,
             std::uint64_t iterations, ExecContext &ctx,
             ExecStats &stats, bool kernelMode)
{
    if (iterations == 0)
        return 0;
    const CodeImage::LinkedBlock &block = image.block(blockId);
    if (observer_)
        observer_->onBlockEnter(block.code, iterations, kernelMode);

    constexpr std::uint64_t kWarmIters = 16;
    constexpr std::uint64_t kSampleIters = 32;

    const bool mayAccelerate = !exactMode_ && !observer_;
    ReplayEntry *entry = nullptr;
    if (mayAccelerate) {
        entry = &replay_[&block];
        if (entry->seeded &&
            entry->interpretedCalls >= kReplayMinCalls &&
            entry->sinceInterpret < kReplayWindow) {
            // Steady state: charge the averaged per-iteration cost
            // without re-interpreting (cache/predictor state frozen).
            ++entry->sinceInterpret;
            ExecStats phase;
            phase.add(entry->perIter,
                      static_cast<double>(iterations));
            if (kernelMode) {
                phase.kernelInstructions += phase.instructions;
                phase.kernelCycles += phase.cycles;
            }
            stats.add(phase);
            return phase.cycles;
        }
    }

    ExecStats phase;
    if (!mayAccelerate || iterations <= kWarmIters + kSampleIters) {
        runPhase(image, block, iterations, ctx, phase);
    } else {
        // Warm the caches/predictor, then measure a steady-state
        // sample and extrapolate the remaining iterations.
        runPhase(image, block, kWarmIters, ctx, phase);
        ExecStats sample;
        runPhase(image, block, kSampleIters, ctx, sample);
        const double scale = static_cast<double>(
            iterations - kWarmIters) / static_cast<double>(kSampleIters);
        phase.add(sample, scale);
    }

    if (entry) {
        ++entry->interpretedCalls;
        entry->sinceInterpret = 0;
        ExecStats perIter;
        perIter.add(phase, 1.0 / static_cast<double>(iterations));
        if (!entry->seeded) {
            entry->perIter = perIter;
            entry->seeded = true;
        } else {
            ExecStats blended;
            blended.add(entry->perIter, 0.7);
            blended.add(perIter, 0.3);
            entry->perIter = blended;
        }
    }

    if (kernelMode) {
        phase.kernelInstructions += phase.instructions;
        phase.kernelCycles += phase.cycles;
    }
    stats.add(phase);
    return phase.cycles;
}

} // namespace ditto::hw
