#include "hw/code.h"

#include <bit>

namespace ditto::hw {

std::uint64_t
roundUpPow2(std::uint64_t v)
{
    if (v <= kLineBytes)
        return kLineBytes;
    return std::bit_ceil(v);
}

CodeImage::CodeImage(std::uint64_t textBase, std::uint64_t dataBase,
                     unsigned maxThreads)
    : textBase_(textBase), textNext_(textBase), dataNext_(dataBase),
      maxThreads_(maxThreads == 0 ? 1 : maxThreads)
{
}

std::uint32_t
CodeImage::addBlock(const CodeBlock &block)
{
    LinkedBlock linked;
    linked.code = block;
    linked.iBase = textNext_;
    textNext_ += block.iFootprintBytes();
    // Keep blocks line-aligned so footprints compose cleanly.
    textNext_ = (textNext_ + kLineBytes - 1) & ~(kLineBytes - 1);

    for (const MemStreamDesc &desc : block.streams) {
        if (desc.poolKey != 0) {
            // Pooled: reuse an existing same-shape allocation.
            const PoolId pool{desc.poolKey, roundUpPow2(desc.wsBytes),
                              desc.shared};
            const auto it = pooled_.find(pool);
            if (it != pooled_.end()) {
                LinkedStream ls = streams_[it->second];
                ls.desc.kind = desc.kind;  // per-site walk pattern
                linked.streamIds.push_back(
                    static_cast<std::uint32_t>(streams_.size()));
                streams_.push_back(ls);
                continue;
            }
        }
        LinkedStream ls;
        ls.desc = desc;
        ls.desc.wsBytes = roundUpPow2(desc.wsBytes);
        ls.base = dataNext_;
        if (desc.shared) {
            ls.perThreadSpan = 0;
            dataNext_ += ls.desc.wsBytes;
        } else {
            ls.perThreadSpan = ls.desc.wsBytes;
            dataNext_ += ls.desc.wsBytes * maxThreads_;
        }
        if (desc.poolKey != 0) {
            pooled_[PoolId{desc.poolKey, ls.desc.wsBytes,
                           desc.shared}] =
                static_cast<std::uint32_t>(streams_.size());
        }
        linked.streamIds.push_back(
            static_cast<std::uint32_t>(streams_.size()));
        streams_.push_back(ls);
    }

    blocks_.push_back(std::move(linked));
    return static_cast<std::uint32_t>(blocks_.size() - 1);
}

} // namespace ditto::hw
