/**
 * @file
 * Machine-level program representation.
 *
 * Both the "original" applications and Ditto-generated clones are
 * expressed as CodeBlocks: short loops of Insts over the iform table,
 * annotated with memory-stream and branch descriptors. This mirrors
 * the synthetic assembly structure in Fig. 3 of the paper (blocks of
 * instructions looping with a given instruction working set and data
 * working set, bitmask-driven conditional branches, pointer chasing).
 *
 * The profilers observe only the *executed* stream of these blocks --
 * never the descriptors -- so clones are reconstructed purely from
 * dynamic statistics, like on real hardware.
 */

#ifndef DITTO_HW_CODE_H_
#define DITTO_HW_CODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "hw/isa.h"

namespace ditto::hw {

/** Register file indices: 16 GPRs then 16 XMM registers. */
inline constexpr std::uint8_t kNumGprs = 16;
inline constexpr std::uint8_t kNumXmms = 16;
inline constexpr std::uint8_t kNumRegs = kNumGprs + kNumXmms;
inline constexpr std::uint8_t kNoReg = 0xff;

/** First XMM register index. */
inline constexpr std::uint8_t kXmmBase = kNumGprs;

inline constexpr std::uint16_t kNoStream = 0xffff;
inline constexpr std::uint16_t kNoBranch = 0xffff;

/** Cache line size used throughout the machine model. */
inline constexpr std::uint64_t kLineBytes = 64;

/** Average x86 instruction size assumed by Eq. 2 of the paper. */
inline constexpr std::uint64_t kInstBytes = 4;

/** How a memory stream walks its working set. */
enum class StreamKind : std::uint8_t
{
    Sequential,    //!< consecutive cache lines, wraps (Fig. 4); prefetchable
    Strided,       //!< fixed multi-line stride; prefetchable
    PointerChase,  //!< serialized dependent loads (mov r11, [r11])
    Random,        //!< uniform lines within the working set; irregular
};

/**
 * A data memory stream: one logical working set walked by the memory
 * instructions that reference it.
 *
 * Addresses are line-granular. Per the paper's working-set synthesis,
 * a 2^i-byte stream accesses lines in [2^(i-1), 2^i) of its base
 * allocation sequentially, so on an LRU hierarchy it hits iff the
 * cache is at least 2^i bytes (Sec. 4.4.4).
 */
struct MemStreamDesc
{
    std::uint64_t wsBytes = kLineBytes;  //!< working set size (pow-2)
    StreamKind kind = StreamKind::Sequential;
    bool shared = false;   //!< shared across threads (coherence misses)
    std::uint32_t stride = 1;  //!< lines per step for Strided
    /**
     * Allocation pool: streams with the same nonzero poolKey, size
     * and sharing mode reuse ONE allocation across blocks (the
     * paper's single synthetic array with offsets). 0 = private
     * allocation per stream declaration.
     */
    std::uint32_t poolKey = 0;
};

/**
 * A conditional branch site with the paper's bitmask behaviour
 * (Sec. 4.4.3): taken rate 2^-M, transition rate 2^-N, both quantized
 * to M, N in [1, 10]. The dynamic direction sequence is periodic:
 * runs of 2^(N+1-M')-taken / rest-not-taken within a period of
 * 2^(N+1), matching `test reg, BITMASK; jz`.
 */
struct BranchDesc
{
    std::uint8_t takenExp = 1;  //!< M: taken rate = 2^-M
    std::uint8_t transExp = 1;  //!< N: transition rate = 2^-N
};

/** One instruction: opcode plus register/memory/branch operands. */
struct Inst
{
    Opcode opcode = 0;
    std::uint8_t dst = kNoReg;
    std::uint8_t src0 = kNoReg;
    std::uint8_t src1 = kNoReg;
    std::uint16_t memStream = kNoStream;
    std::uint16_t branch = kNoBranch;
    /** Repeat count for RepString forms (bytes); 0 otherwise. */
    std::uint32_t repBytes = 0;
};

/**
 * A loopable block of instructions -- the unit of compute in every
 * handler. The block's static size defines its instruction-memory
 * footprint; its streams define the data footprint.
 */
struct CodeBlock
{
    std::string label;           //!< for call-graph / thread profiling
    std::vector<Inst> insts;
    std::vector<MemStreamDesc> streams;
    std::vector<BranchDesc> branches;

    /** Static instruction footprint in bytes. */
    std::uint64_t
    iFootprintBytes() const
    {
        return static_cast<std::uint64_t>(insts.size()) * kInstBytes;
    }

    /** Total data footprint of private+shared streams in bytes. */
    std::uint64_t
    dFootprintBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &s : streams)
            total += s.wsBytes;
        return total;
    }
};

/**
 * A linked collection of code blocks with assigned virtual addresses.
 *
 * Linking lays blocks out contiguously in a per-service text segment
 * (so the *cumulative* static footprint drives i-cache behaviour and
 * branch aliasing) and assigns each stream a base address in the
 * service's data segment. Private streams get a distinct copy per
 * hardware thread slot; shared streams a single one.
 */
class CodeImage
{
  public:
    struct LinkedStream
    {
        MemStreamDesc desc;
        std::uint64_t base = 0;          //!< shared base
        std::uint64_t perThreadSpan = 0; //!< stride between thread copies
    };

    struct LinkedBlock
    {
        CodeBlock code;
        std::uint64_t iBase = 0;           //!< text address of the block
        std::vector<std::uint32_t> streamIds; //!< into streams()
    };

    /**
     * @param textBase  base virtual address for the text segment
     * @param dataBase  base virtual address for the data segment
     * @param maxThreads number of private-copy slots per stream
     */
    CodeImage(std::uint64_t textBase, std::uint64_t dataBase,
              unsigned maxThreads);

    /** Link a block; returns its block id. */
    std::uint32_t addBlock(const CodeBlock &block);

    const LinkedBlock &block(std::uint32_t id) const
    {
        return blocks_[id];
    }
    std::size_t blockCount() const { return blocks_.size(); }

    const LinkedStream &stream(std::uint32_t id) const
    {
        return streams_[id];
    }
    std::size_t streamCount() const { return streams_.size(); }

    /** End of the text segment (next free address). */
    std::uint64_t textEnd() const { return textNext_; }

    /** End of the data segment (next free address). */
    std::uint64_t dataEnd() const { return dataNext_; }

    /** Total bytes of text linked. */
    std::uint64_t textBytes() const { return textNext_ - textBase_; }

    unsigned maxThreads() const { return maxThreads_; }

  private:
    using PoolId = std::tuple<std::uint32_t, std::uint64_t, bool>;

    std::uint64_t textBase_;
    std::uint64_t textNext_;
    std::uint64_t dataNext_;
    unsigned maxThreads_;
    std::vector<LinkedBlock> blocks_;
    std::vector<LinkedStream> streams_;
    std::map<PoolId, std::uint32_t> pooled_;
};

/** Round up to the next power of two (minimum kLineBytes). */
std::uint64_t roundUpPow2(std::uint64_t v);

} // namespace ditto::hw

#endif // DITTO_HW_CODE_H_
