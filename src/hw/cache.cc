#include "hw/cache.h"

#include <bit>
#include <cassert>

namespace ditto::hw {

namespace {

inline std::uint64_t
lineOf(std::uint64_t addr)
{
    return addr / kLineBytes;
}

} // namespace

Cache::Cache(std::uint64_t capacityBytes, unsigned ways)
    : capacity_(capacityBytes), ways_(ways)
{
    assert(ways_ > 0);
    std::uint64_t line_count = capacity_ / kLineBytes;
    if (line_count < ways_)
        line_count = ways_;
    sets_ = line_count / ways_;
    // Round the set count down to a power of two for mask indexing;
    // capacities like 30.25MB (Platform A LLC) produce non-pow2 set
    // counts, so keep the largest pow2 not exceeding it.
    sets_ = std::bit_floor(sets_);
    if (sets_ == 0)
        sets_ = 1;
    setMask_ = sets_ - 1;
    setShift_ = static_cast<unsigned>(std::countr_zero(sets_));
    lines_.assign(sets_ * ways_, Line{});
}

Cache::Line *
Cache::find(std::uint64_t addr)
{
    const std::uint64_t line = lineOf(addr);
    const std::uint64_t set = line & setMask_;
    const std::uint64_t tag = line >> setShift_;
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(std::uint64_t addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

Cache::Line *
Cache::victim(std::uint64_t addr)
{
    const std::uint64_t line = lineOf(addr);
    const std::uint64_t set = line & setMask_;
    Line *base = &lines_[set * ways_];
    Line *lru = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lastUse < lru->lastUse)
            lru = &base[w];
    }
    return lru;
}

bool
Cache::access(std::uint64_t addr, bool /*isWrite*/)
{
    ++stats_.accesses;
    ++tick_;
    if (Line *line = find(addr)) {
        if (line->prefetched) {
            ++stats_.prefetchHits;
            line->prefetched = false;
        }
        line->lastUse = tick_;
        return true;
    }
    ++stats_.misses;
    Line *line = victim(addr);
    if (line->valid)
        ++stats_.evictions;
    const std::uint64_t lineAddr = lineOf(addr);
    line->tag = lineAddr >> setShift_;
    line->lastUse = tick_;
    line->valid = true;
    line->prefetched = false;
    return false;
}

void
Cache::fill(std::uint64_t addr, bool prefetch)
{
    ++tick_;
    if (Line *line = find(addr)) {
        line->lastUse = tick_;
        return;
    }
    Line *line = victim(addr);
    if (line->valid)
        ++stats_.evictions;
    const std::uint64_t lineAddr = lineOf(addr);
    line->tag = lineAddr >> setShift_;
    line->lastUse = tick_;
    line->valid = true;
    line->prefetched = prefetch;
    if (prefetch)
        ++stats_.prefetchFills;
}

bool
Cache::probe(std::uint64_t addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::invalidate(std::uint64_t addr)
{
    if (Line *line = find(addr)) {
        line->valid = false;
        ++stats_.invalidations;
        return true;
    }
    return false;
}

void
Cache::invalidateFraction(double fraction, std::uint64_t salt)
{
    if (fraction <= 0.0)
        return;
    // Deterministic pseudo-random selection keyed by line index+salt.
    const auto threshold =
        static_cast<std::uint64_t>(fraction * 4294967296.0);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (!lines_[i].valid)
            continue;
        std::uint64_t h = (i * 0x9e3779b97f4a7c15ull) ^ salt;
        h ^= h >> 29;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 32;
        if ((h & 0xffffffffull) < threshold) {
            lines_[i].valid = false;
            ++stats_.invalidations;
        }
    }
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

StreamPrefetcher::StreamPrefetcher(unsigned tableSize, unsigned degree)
    : table_(tableSize), degree_(degree)
{
}

void
StreamPrefetcher::observe(std::uint64_t lineAddr,
                          std::vector<std::uint64_t> &out)
{
    out.clear();
    ++tick_;
    // Match an existing stream; remember the LRU slot for allocation.
    StreamEntry *lruEntry = &table_[0];
    for (StreamEntry &e : table_) {
        if (!lruEntry->valid) {
            // keep current lruEntry (free slot wins)
        } else if (!e.valid || e.lastUse < lruEntry->lastUse) {
            lruEntry = &e;
        }
        if (!e.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(lineAddr) -
            static_cast<std::int64_t>(e.lastLine);
        if (delta != 0 && delta == e.stride) {
            // Confirmed stream: issue prefetches.
            if (++e.confidence >= 2) {
                for (unsigned d = 1; d <= degree_; ++d) {
                    out.push_back(static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(lineAddr) +
                        e.stride * static_cast<std::int64_t>(d)));
                }
            }
            e.lastLine = lineAddr;
            e.lastUse = tick_;
            return;
        }
        if (delta != 0 && delta >= -8 && delta <= 8) {
            // Train a new stride on this entry.
            e.stride = delta;
            e.confidence = 1;
            e.lastLine = lineAddr;
            e.lastUse = tick_;
            return;
        }
    }
    // Allocate a fresh stream on the LRU entry.
    lruEntry->valid = true;
    lruEntry->lastLine = lineAddr;
    lruEntry->stride = 0;
    lruEntry->confidence = 0;
    lruEntry->lastUse = tick_;
}

void
StreamPrefetcher::reset()
{
    for (StreamEntry &e : table_)
        e.valid = false;
    tick_ = 0;
}

CacheHierarchy::CacheHierarchy(std::uint64_t l1iBytes, unsigned l1iWays,
                               std::uint64_t l1dBytes, unsigned l1dWays,
                               std::uint64_t l2Bytes, unsigned l2Ways,
                               Cache *sharedLlc, bool prefetchEnabled)
    : l1i_(l1iBytes, l1iWays), l1d_(l1dBytes, l1dWays),
      l2_(l2Bytes, l2Ways), llc_(sharedLlc),
      prefetchEnabled_(prefetchEnabled)
{
}

CacheLevel
CacheHierarchy::accessData(std::uint64_t addr, bool isWrite)
{
    CacheLevel level = CacheLevel::Memory;
    if (l1d_.access(addr, isWrite)) {
        level = CacheLevel::L1;
    } else if (l2_.access(addr, isWrite)) {
        level = CacheLevel::L2;
        l1d_.fill(addr);
    } else if (llc_ && llc_->access(addr, isWrite)) {
        level = CacheLevel::L3;
        l2_.fill(addr);
        l1d_.fill(addr);
    } else {
        level = CacheLevel::Memory;
        if (llc_)
            llc_->fill(addr);
        l2_.fill(addr);
        l1d_.fill(addr);
    }

    if (prefetchEnabled_) {
        prefetcher_.observe(addr / kLineBytes, prefetchScratch_);
        for (std::uint64_t line : prefetchScratch_) {
            const std::uint64_t pfAddr = line * kLineBytes;
            if (!l2_.probe(pfAddr)) {
                if (llc_ && !llc_->probe(pfAddr))
                    llc_->fill(pfAddr, true);
                l2_.fill(pfAddr, true);
            }
            if (!l1d_.probe(pfAddr))
                l1d_.fill(pfAddr, true);
        }
    }
    return level;
}

CacheLevel
CacheHierarchy::accessInst(std::uint64_t addr)
{
    if (l1i_.access(addr, false))
        return CacheLevel::L1;
    if (l2_.access(addr, false)) {
        l1i_.fill(addr);
        return CacheLevel::L2;
    }
    if (llc_ && llc_->access(addr, false)) {
        l2_.fill(addr);
        l1i_.fill(addr);
        return CacheLevel::L3;
    }
    if (llc_)
        llc_->fill(addr);
    l2_.fill(addr);
    l1i_.fill(addr);
    return CacheLevel::Memory;
}

void
CacheHierarchy::invalidateData(std::uint64_t addr)
{
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
}

void
CacheHierarchy::pollute(double fraction, std::uint64_t salt)
{
    l1i_.invalidateFraction(fraction, salt);
    l1d_.invalidateFraction(fraction, salt ^ 0xabcdef);
    l2_.invalidateFraction(fraction * 0.25, salt ^ 0x123456);
}

} // namespace ditto::hw
