/**
 * @file
 * CPU core model: interprets CodeBlocks and produces cycle counts
 * with top-down attribution (retiring / frontend / bad speculation /
 * backend, after Yasin's methodology referenced by the paper).
 *
 * The model is structural where the paper's cloning arguments need it
 * to be (caches simulated access-by-access, a real pattern-history
 * branch predictor, dataflow critical path through registers for ILP,
 * port-pressure accounting for the instruction mix) and analytical
 * where cycle-accuracy would add cost without changing the cloning
 * story (no reorder-buffer simulation; parallel miss latencies
 * overlap up to the platform MLP).
 */

#ifndef DITTO_HW_CPU_CORE_H_
#define DITTO_HW_CPU_CORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/branch_predictor.h"
#include "hw/cache.h"
#include "hw/code.h"
#include "hw/platform.h"
#include "sim/rng.h"

namespace ditto::hw {

/**
 * Execution statistics, accumulated over block runs.
 *
 * Counts are doubles so sampled iterations can be extrapolated
 * exactly (see CpuCore's iteration sampling).
 */
struct ExecStats
{
    double instructions = 0;
    double uops = 0;
    double cycles = 0;

    double branches = 0;
    double mispredicts = 0;

    double l1iAccesses = 0;
    double l1iMisses = 0;
    double l1dAccesses = 0;
    double l1dMisses = 0;
    double l2Accesses = 0;
    double l2Misses = 0;
    double llcAccesses = 0;
    double llcMisses = 0;

    double loads = 0;
    double stores = 0;

    double retiringCycles = 0;
    double frontendCycles = 0;
    double badSpecCycles = 0;
    double backendCycles = 0;

    /** Miss latency absorbed in parallel (MLP-overlapped). */
    double parallelMissCycles = 0;
    /** Miss latency serialized on the dependence chain (chasing). */
    double serializedMissCycles = 0;

    double kernelInstructions = 0;
    double kernelCycles = 0;

    /** Accumulate `other`, scaling every field. */
    void add(const ExecStats &other, double scale = 1.0);

    double ipc() const { return cycles > 0 ? instructions / cycles : 0; }
    double cpi() const { return instructions > 0 ? cycles / instructions : 0; }

    double
    mispredictRate() const
    {
        return branches > 0 ? mispredicts / branches : 0;
    }

    double missRateL1i() const { return rate(l1iMisses, l1iAccesses); }
    double missRateL1d() const { return rate(l1dMisses, l1dAccesses); }
    double missRateL2() const { return rate(l2Misses, l2Accesses); }
    double missRateLlc() const { return rate(llcMisses, llcAccesses); }

    /** Branch mispredictions per kilo-instruction. */
    double
    branchMpki() const
    {
        return instructions > 0 ? 1000.0 * mispredicts / instructions : 0;
    }

  private:
    static double
    rate(double num, double den)
    {
        return den > 0 ? num / den : 0.0;
    }
};

/**
 * Hook receiving the executed stream -- the profilers' view of the
 * machine (the moral equivalent of SDE / Valgrind instrumentation).
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** A block is about to run `iterations` times. */
    virtual void
    onBlockEnter(const CodeBlock &block, std::uint64_t iterations,
                 bool kernelMode)
    {
        (void)block;
        (void)iterations;
        (void)kernelMode;
    }

    /** One dynamic instruction (registers resolved). */
    virtual void
    onInst(const Inst &inst, const InstInfo &info)
    {
        (void)inst;
        (void)info;
    }

    /** One data access (byte address, line-granular). */
    virtual void
    onDataAccess(std::uint64_t addr, bool isWrite, bool shared)
    {
        (void)addr;
        (void)isWrite;
        (void)shared;
    }

    /** One instruction-fetch access (line address). */
    virtual void
    onInstFetch(std::uint64_t addr)
    {
        (void)addr;
    }

    /** One conditional branch execution. */
    virtual void
    onBranch(std::uint64_t pc, bool taken)
    {
        (void)pc;
        (void)taken;
    }
};

/** Coherence fan-out: lets a shared write invalidate peer caches. */
class CoherenceDomain
{
  public:
    virtual ~CoherenceDomain() = default;

    /** Called when core `coreId` writes a shared line. */
    virtual void sharedWrite(unsigned coreId, std::uint64_t addr) = 0;

    /** Called when core `coreId` reads a shared line. */
    virtual void sharedRead(unsigned coreId, std::uint64_t addr) = 0;
};

/**
 * Per-software-thread execution state: stream cursors and branch
 * pattern counters per block, plus the RNG for Random streams.
 */
class ExecContext
{
  public:
    explicit ExecContext(unsigned threadSlot, std::uint64_t seed = 1);

    unsigned threadSlot() const { return threadSlot_; }

    struct BlockRt
    {
        std::vector<std::uint64_t> streamCursor;
        std::vector<std::uint64_t> streamLcg;
        std::vector<std::uint64_t> branchCount;
    };

    /** State for a block, created on first use. */
    BlockRt &blockRt(const void *blockKey, std::size_t streams,
                     std::size_t branches);

    sim::Rng &rng() { return rng_; }

  private:
    unsigned threadSlot_;
    sim::Rng rng_;
    std::unordered_map<const void *, BlockRt> rt_;
};

/**
 * One logical CPU. References a cache hierarchy that may be shared
 * with an SMT sibling (so hyperthread co-location contends for
 * L1/L2 for real); owns its branch predictor.
 */
class CpuCore
{
  public:
    CpuCore(unsigned id, const PlatformSpec &spec,
            CacheHierarchy &caches, CoherenceDomain *coherence);

    /**
     * Execute a linked block `iterations` times.
     *
     * @return cycles consumed (converted to time by the caller using
     *         the platform frequency).
     */
    double run(const CodeImage &image, std::uint32_t blockId,
               std::uint64_t iterations, ExecContext &ctx,
               ExecStats &stats, bool kernelMode = false);

    CacheHierarchy &caches() { return *caches_; }
    BranchPredictor &predictor() { return predictor_; }
    unsigned id() const { return id_; }

    /** Attach/detach a profiler; also forces exact execution. */
    void setObserver(ExecObserver *observer);

    /** Disable iteration sampling and replay (profiling-accurate). */
    void setExactMode(bool exact) { exactMode_ = exact; }

    /**
     * Replay acceleration: after a block has been interpreted
     * `kReplayMinCalls` times on this core, only every
     * `kReplayWindow`-th call is interpreted; the rest charge the
     * exponentially-averaged steady-state cost. Exact mode and
     * attached observers always interpret.
     */
    static constexpr unsigned kReplayMinCalls = 12;
    static constexpr unsigned kReplayWindow = 12;

    /**
     * Multiplier >= 1 applied to final cycle counts when an SMT
     * sibling or an external CPU stressor contends for the pipeline.
     */
    void setContentionFactor(double f) { contention_ = f; }
    double contentionFactor() const { return contention_; }

    /** Context-switch cost: cycles + private cache pollution. */
    void contextSwitch(std::uint64_t salt);

    /** Cycles charged per context switch (direct cost). */
    static constexpr double kContextSwitchCycles = 2200;

  private:
    struct ReplayEntry
    {
        ExecStats perIter;
        unsigned interpretedCalls = 0;
        unsigned sinceInterpret = 0;
        bool seeded = false;
    };

    unsigned id_;
    const PlatformSpec spec_;
    CacheHierarchy *caches_;
    BranchPredictor predictor_;
    CoherenceDomain *coherence_;
    ExecObserver *observer_ = nullptr;
    bool exactMode_ = false;
    double contention_ = 1.0;
    std::unordered_map<const void *, ReplayEntry> replay_;

    void runPhase(const CodeImage &image,
                  const CodeImage::LinkedBlock &block,
                  std::uint64_t iterations, ExecContext &ctx,
                  ExecStats &out);

    std::uint64_t nextStreamAddr(const CodeImage::LinkedStream &stream,
                                 ExecContext &ctx,
                                 ExecContext::BlockRt &rt,
                                 std::size_t streamIdx);
};

} // namespace ditto::hw

#endif // DITTO_HW_CPU_CORE_H_
