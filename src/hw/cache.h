/**
 * @file
 * Structural cache model: set-associative caches with true-LRU
 * replacement, an inclusive three-level hierarchy with a shared LLC,
 * a next-line stream prefetcher, and write-invalidate coherence for
 * shared lines.
 *
 * The caches are simulated access-by-access (not analytically) so the
 * paper's working-set argument (Sec. 4.4.4: a sequential 2^i-byte
 * loop hits iff capacity >= 2^i under LRU) holds in this model for
 * the same structural reason it holds on silicon.
 */

#ifndef DITTO_HW_CACHE_H_
#define DITTO_HW_CACHE_H_

#include <cstdint>
#include <vector>

#include "hw/code.h"

namespace ditto::hw {

/** Where an access was satisfied. */
enum class CacheLevel : std::uint8_t
{
    L1 = 1,
    L2 = 2,
    L3 = 3,
    Memory = 4,
};

/** Per-cache hit/miss/eviction counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t prefetchHits = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * One set-associative cache with true LRU.
 *
 * Addresses are byte addresses; the cache operates on 64B lines.
 * Capacity and associativity must make a power-of-two set count.
 */
class Cache
{
  public:
    Cache(std::uint64_t capacityBytes, unsigned ways);

    /**
     * Look up a line; on miss the line is filled (allocating on both
     * reads and writes: write-allocate).
     * @retval true on hit.
     */
    bool access(std::uint64_t addr, bool isWrite);

    /** Fill a line without counting an access (prefetch path). */
    void fill(std::uint64_t addr, bool prefetch = false);

    /** True if the line is present (no state change, no counting). */
    bool probe(std::uint64_t addr) const;

    /** Drop a line if present. @retval true if it was present. */
    bool invalidate(std::uint64_t addr);

    /** Invalidate a fraction of all lines (context-switch pollution). */
    void invalidateFraction(double fraction, std::uint64_t salt);

    /** Empty the cache. */
    void flush();

    std::uint64_t capacityBytes() const { return capacity_; }
    unsigned ways() const { return ways_; }
    std::uint64_t sets() const { return sets_; }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool prefetched = false;
    };

    std::uint64_t capacity_;
    unsigned ways_;
    std::uint64_t sets_;
    std::uint64_t setMask_;
    unsigned setShift_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
    CacheStats stats_;

    Line *find(std::uint64_t addr);
    const Line *find(std::uint64_t addr) const;
    Line *victim(std::uint64_t addr);
};

/** Latencies (cycles) of each level of the hierarchy. */
struct MemLatency
{
    unsigned l1 = 4;
    unsigned l2 = 12;
    unsigned l3 = 40;
    unsigned memory = 220;

    unsigned
    of(CacheLevel level) const
    {
        switch (level) {
          case CacheLevel::L1: return l1;
          case CacheLevel::L2: return l2;
          case CacheLevel::L3: return l3;
          case CacheLevel::Memory: return memory;
        }
        return memory;
    }
};

/**
 * Next-line stream prefetcher (Sec. 4.4.4: hardware prefetchers
 * detect consecutive/strided line sequences). Tracks a small table of
 * active streams; on a detected stream it prefetches `degree` lines
 * ahead into L2 and L1d.
 */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(unsigned tableSize = 16, unsigned degree = 4);

    /**
     * Observe a demand access; returns line addresses to prefetch
     * (possibly empty). `out` is cleared first.
     */
    void observe(std::uint64_t lineAddr,
                 std::vector<std::uint64_t> &out);

    void reset();

  private:
    struct StreamEntry
    {
        std::uint64_t lastLine = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::vector<StreamEntry> table_;
    unsigned degree_;
    std::uint64_t tick_ = 0;
};

/**
 * The private L1i/L1d/L2 of one core plus a pointer to the node's
 * shared LLC. Inclusive fills; misses propagate outward and fill
 * inward.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(std::uint64_t l1iBytes, unsigned l1iWays,
                   std::uint64_t l1dBytes, unsigned l1dWays,
                   std::uint64_t l2Bytes, unsigned l2Ways,
                   Cache *sharedLlc, bool prefetchEnabled);

    /**
     * Data access. @return the level that satisfied it.
     */
    CacheLevel accessData(std::uint64_t addr, bool isWrite);

    /** Instruction fetch access. */
    CacheLevel accessInst(std::uint64_t addr);

    /** Invalidate a data line in the private levels (coherence). */
    void invalidateData(std::uint64_t addr);

    /** Context-switch pollution: drop a fraction of private lines. */
    void pollute(double fraction, std::uint64_t salt);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cache *llc() { return llc_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    bool prefetchEnabled() const { return prefetchEnabled_; }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache *llc_;
    StreamPrefetcher prefetcher_;
    bool prefetchEnabled_;
    std::vector<std::uint64_t> prefetchScratch_;
};

} // namespace ditto::hw

#endif // DITTO_HW_CACHE_H_
