/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * Events scheduled at the same timestamp fire in insertion order
 * (stable FIFO tie-break via a monotonically increasing sequence
 * number), which keeps simulations deterministic.
 *
 * Hot-path design: callbacks live in a recycled slot pool indexed by
 * the low bits of the id. Cancellation just invalidates the slot in
 * O(1) -- the stale queue item is recognised (sequence mismatch or
 * non-pending slot) and dropped when it surfaces. Slot reuse is
 * ABA-safe because the sequence number in the id's high bits is never
 * reused.
 *
 * Two interchangeable timer backends order the 16-byte POD items
 * {when, id}:
 *
 *  - Backend::Wheel (default): a hierarchical timing wheel, 4 levels
 *    of 256 slots at 1ns resolution (spans 256ns / 64us / 16.7ms /
 *    4.29s ahead of the cascade cursor), with a min-heap holding the
 *    far overflow (> 2^32 ns ahead). Schedule and cancel are O(1);
 *    dispatch walks per-level occupancy bitmaps and cascades one slot
 *    at a time, so cost per event is O(1) amortised and independent
 *    of the pending population.
 *  - Backend::Heap: the legacy std::priority_queue binary heap
 *    (O(log n) schedule/pop), kept for differential testing.
 *
 * Both backends execute live items in exactly (when, sequence) order,
 * so a simulation's output is bit-identical under either (asserted by
 * the differential tests in tests/test_sim.cc). The environment
 * variable DITTO_EVENT_QUEUE=heap flips default-constructed queues to
 * the legacy backend process-wide.
 */

#ifndef DITTO_SIM_EVENT_QUEUE_H_
#define DITTO_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ditto::sim {

/**
 * Opaque handle used to cancel a scheduled event.
 * Packs (sequence << kSlotBits | slot); sequence order == schedule
 * order, so comparing ids preserves the FIFO tie-break.
 */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks driving the simulation.
 *
 * The queue owns the simulated clock: now() advances only when an
 * event is popped, never backwards.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Timer-ordering backend (see file comment). */
    enum class Backend : std::uint8_t
    {
        Wheel,  //!< hierarchical timing wheel (default)
        Heap,   //!< legacy binary heap, for differential testing
    };

    /** Uses defaultBackend() (Wheel unless DITTO_EVENT_QUEUE=heap). */
    EventQueue();
    explicit EventQueue(Backend backend);
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Backend selected by the DITTO_EVENT_QUEUE env var (cached). */
    static Backend defaultBackend();

    Backend backend() const { return backend_; }

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule a callback at an absolute timestamp (>= now). */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedule a callback after a relative delay from now. */
    EventId scheduleAfter(Time delay, Callback cb);

    /**
     * Cancel a previously scheduled event. O(1).
     * @retval true if the event was pending and is now cancelled;
     *         false for ids that already fired or were cancelled.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Pop and run the next event.
     * @retval false when the queue was empty and nothing ran.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the clock passes `limit`.
     * Events stamped exactly at `limit` still run.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time limit);

    /** Run all events to exhaustion. @return number executed. */
    std::uint64_t runAll();

    /** Total number of events ever executed. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    /** Low bits of an EventId address the slot pool (<= 16M pending). */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t{1} << kSlotBits) - 1;

    /** 16-byte POD ordering item shared by both backends. */
    struct QueueItem
    {
        Time when;
        EventId id;

        bool
        operator>(const QueueItem &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;  // sequence dominates -> FIFO
        }
    };

    /** Pooled callback storage; recycled via freeSlots_. */
    struct Slot
    {
        Callback cb;
        std::uint64_t seq = 0;
        bool pending = false;
    };

    // ---- hierarchical timing wheel ----------------------------------
    //
    // Level k slots are 2^(8k) ns wide; level k spans 2^(8(k+1)) ns.
    // A live item sits at the deepest level whose current window
    // (relative to cursor_) contains its timestamp, at slot index
    // (when >> 8k) & 255 -- for level 0 that means one slot holds
    // exactly one timestamp, so the FIFO tie-break reduces to a
    // min-sequence scan of a single slot. Items further than 2^32 ns
    // ahead of the cursor wait in the far_ min-heap and are pulled
    // into the wheel when the cursor enters their 2^32 ns epoch.
    // cursor_ <= every live timestamp; it advances only toward a live
    // item that is about to execute (or to a cascade boundary at or
    // below the caller's runUntil limit), which keeps insertion
    // windows consistent with the clamp-to-now() rule for new events.
    static constexpr unsigned kWheelLevels = 4;
    static constexpr unsigned kWheelBits = 8;
    static constexpr unsigned kWheelSlots = 1u << kWheelBits;  // 256
    static constexpr std::uint64_t kWheelSlotMask = kWheelSlots - 1;

    struct WheelState
    {
        /** wheel[level][index]: items awaiting cascade/dispatch. */
        std::vector<QueueItem> slots[kWheelLevels][kWheelSlots];
        /** 256-bit occupancy bitmap per level (4 x u64). */
        std::uint64_t occupied[kWheelLevels][kWheelSlots / 64] = {};
        /** Overflow: items >= 2^32 ns ahead of cursor. */
        std::priority_queue<QueueItem, std::vector<QueueItem>,
                            std::greater<>>
            far;
        /** Cascade position; <= every live timestamp. */
        Time cursor = 0;
    };

    Backend backend_;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<>>
        heap_;
    std::unique_ptr<WheelState> wheel_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    /** True when the queue item still references a live slot. */
    bool isLive(EventId id) const;

    /** Allocate a pool slot and build the id for a new event. */
    EventId makeEvent(Callback cb);

    /** Move the callback out of `id`'s slot and retire the slot. */
    Callback takeCallback(EventId id);

    // ---- wheel internals --------------------------------------------
    void wheelInsert(Time when, EventId id);
    void wheelSetBit(unsigned level, unsigned idx);
    void wheelClearBit(unsigned level, unsigned idx);
    /** Lowest occupied slot index of `level`, or kWheelSlots. */
    unsigned wheelFirstOccupied(unsigned level) const;
    /**
     * Drop dead items from wheel_->slots[level][idx]; returns false
     * (and clears the occupancy bit) when the slot came up empty.
     */
    bool wheelCompactSlot(unsigned level, unsigned idx);
    /**
     * Timestamp of the next live event, advancing the cascade cursor
     * no further than `bound`; kTimeNever when none exists at or
     * below `bound` (the cursor then stays put, so later insertions
     * clamped to now() remain >= cursor).
     */
    Time wheelNextLiveTime(Time bound);
    /** Pop the (when, min-seq) live item of the earliest L0 slot. */
    QueueItem wheelPopFront();

    // ---- heap internals ---------------------------------------------
    /** Drop dead heap tops; false when the heap drained. */
    bool heapSkimDead();
};

} // namespace ditto::sim

#endif // DITTO_SIM_EVENT_QUEUE_H_
