/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * Events scheduled at the same timestamp fire in insertion order
 * (stable FIFO tie-break via a monotonically increasing sequence
 * number), which keeps simulations deterministic.
 *
 * Hot-path design: the binary heap holds only 16-byte POD items
 * (timestamp + packed id); callbacks live in a recycled slot pool
 * indexed by the low bits of the id. Cancellation just invalidates
 * the slot in O(1) -- the stale heap item is recognised (sequence
 * mismatch or non-pending slot) and skipped when it surfaces. Slot
 * reuse is ABA-safe because the sequence number in the id's high
 * bits is never reused.
 */

#ifndef DITTO_SIM_EVENT_QUEUE_H_
#define DITTO_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ditto::sim {

/**
 * Opaque handle used to cancel a scheduled event.
 * Packs (sequence << kSlotBits | slot); sequence order == schedule
 * order, so comparing ids preserves the FIFO tie-break.
 */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks driving the simulation.
 *
 * The queue owns the simulated clock: now() advances only when an
 * event is popped, never backwards.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule a callback at an absolute timestamp (>= now). */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedule a callback after a relative delay from now. */
    EventId scheduleAfter(Time delay, Callback cb);

    /**
     * Cancel a previously scheduled event. O(1).
     * @retval true if the event was pending and is now cancelled;
     *         false for ids that already fired or were cancelled.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Pop and run the next event.
     * @retval false when the queue was empty and nothing ran.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the clock passes `limit`.
     * Events stamped exactly at `limit` still run.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time limit);

    /** Run all events to exhaustion. @return number executed. */
    std::uint64_t runAll();

    /** Total number of events ever executed. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    /** Low bits of an EventId address the slot pool (<= 16M pending). */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t{1} << kSlotBits) - 1;

    struct HeapItem
    {
        Time when;
        EventId id;

        bool
        operator>(const HeapItem &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;  // sequence dominates -> FIFO
        }
    };

    /** Pooled callback storage; recycled via freeSlots_. */
    struct Slot
    {
        Callback cb;
        std::uint64_t seq = 0;
        bool pending = false;
    };

    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<>>
        heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    /** True when the heap item still references a live slot. */
    bool isLive(EventId id) const;
};

} // namespace ditto::sim

#endif // DITTO_SIM_EVENT_QUEUE_H_
