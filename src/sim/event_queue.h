/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * Events scheduled at the same timestamp fire in insertion order
 * (stable FIFO tie-break via a monotonically increasing sequence
 * number), which keeps simulations deterministic.
 */

#ifndef DITTO_SIM_EVENT_QUEUE_H_
#define DITTO_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ditto::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks driving the simulation.
 *
 * The queue owns the simulated clock: now() advances only when an
 * event is popped, never backwards.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule a callback at an absolute timestamp (>= now). */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedule a callback after a relative delay from now. */
    EventId scheduleAfter(Time delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     * @retval true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Pop and run the next event.
     * @retval false when the queue was empty and nothing ran.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the clock passes `limit`.
     * Events stamped exactly at `limit` still run.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time limit);

    /** Run all events to exhaustion. @return number executed. */
    std::uint64_t runAll();

    /** Total number of events ever executed. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<EventId> cancelled_;
    Time now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    bool isCancelled(EventId id) const;
    void dropCancelled(EventId id);
};

} // namespace ditto::sim

#endif // DITTO_SIM_EVENT_QUEUE_H_
