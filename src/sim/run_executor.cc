#include "sim/run_executor.h"

#include <cstdlib>
#include <string>

namespace ditto::sim {

namespace {

/** Parse a positive integer; 0 on anything else. */
unsigned
parseJobs(const char *text)
{
    if (!text || !*text)
        return 0;
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0 || value > 4096)
        return 0;
    return static_cast<unsigned>(value);
}

} // namespace

unsigned
RunExecutor::defaultJobs()
{
    if (const unsigned env = parseJobs(std::getenv("DITTO_JOBS")))
        return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
RunExecutor::jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            if (const unsigned n = parseJobs(argv[i + 1]))
                return n;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            if (const unsigned n = parseJobs(arg.c_str() + 7))
                return n;
        }
    }
    return defaultJobs();
}

RunExecutor::RunExecutor(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
    // The caller participates via runOrdered()'s help-running, so
    // jobs_ total parallelism needs jobs_ - 1 dedicated workers.
    for (unsigned i = 1; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunExecutor::~RunExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
RunExecutor::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
RunExecutor::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();  // packaged_task captures any exception in its future
    return true;
}

void
RunExecutor::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace ditto::sim
