/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component in the framework draws from an explicitly
 * seeded Rng instance so simulations are exactly reproducible. The
 * generator is xoshiro256** (Blackman & Vigna) seeded through
 * splitmix64, which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef DITTO_SIM_RNG_H_
#define DITTO_SIM_RNG_H_

#include <array>
#include <cstdint>

namespace ditto::sim {

/**
 * Deterministic random number generator with convenience samplers.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also
 * be used with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit output. */
    std::uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Returns 0 when n == 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Exponentially distributed sample with the given mean. */
    double exponential(double mean);

    /** Normal sample (Box-Muller). */
    double normal(double mean, double stddev);

    /** Log-normal sample parameterized by the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Poisson-distributed count with the given mean (Knuth / PTRS). */
    std::uint64_t poisson(double mean);

    /** Fork an independent stream; deterministic given this stream. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

/** splitmix64 step; used for seeding and cheap hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

} // namespace ditto::sim

#endif // DITTO_SIM_RNG_H_
