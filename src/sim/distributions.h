/**
 * @file
 * Reusable sampling distributions layered on top of sim::Rng.
 *
 * These power workload generation (key popularity, request sizes,
 * service-time jitter) and the Ditto generators (sampling instruction
 * mixes, branch-rate bins, dependency-distance tuples from profiled
 * histograms).
 */

#ifndef DITTO_SIM_DISTRIBUTIONS_H_
#define DITTO_SIM_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace ditto::sim {

/**
 * Zipfian distribution over [0, n) with parameter theta, using the
 * Gray et al. rejection-free method popularized by YCSB. theta = 0
 * degenerates to uniform; typical skewed workloads use ~0.99.
 */
class ZipfDist
{
  public:
    ZipfDist(std::uint64_t n, double theta);

    /** Sample an item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double zeta2_;
};

/**
 * Discrete empirical distribution over arbitrary bucket values.
 *
 * Built from (value, weight) pairs; sampling is O(log n) via the
 * cumulative weight table. This is the workhorse for replaying
 * profiled histograms (instruction mix, syscall arguments, branch
 * bins, dependency distances).
 */
class EmpiricalDist
{
  public:
    EmpiricalDist() = default;

    /** Add an outcome with the given nonnegative weight. */
    void add(std::int64_t value, double weight);

    /** True when no outcome has positive weight. */
    bool empty() const { return total_ <= 0.0; }

    /** Number of distinct outcomes added. */
    std::size_t size() const { return values_.size(); }

    /** Sum of all weights. */
    double totalWeight() const { return total_; }

    /** Sample one outcome; requires !empty(). */
    std::int64_t sample(Rng &rng) const;

    /** Probability mass of an exact outcome value. */
    double probabilityOf(std::int64_t value) const;

    /** Weighted mean of the outcomes. */
    double mean() const;

    const std::vector<std::int64_t> &values() const { return values_; }
    const std::vector<double> &weights() const { return weights_; }

  private:
    std::vector<std::int64_t> values_;
    std::vector<double> weights_;
    std::vector<double> cumulative_;
    double total_ = 0.0;
};

/**
 * Continuous empirical distribution: samples uniformly within the
 * bucket chosen from a weighted set of [lo, hi) ranges. Used for
 * syscall argument sizes (read counts, offsets) where the profiler
 * records range histograms rather than exact values.
 */
class RangeDist
{
  public:
    void add(double lo, double hi, double weight);

    bool empty() const { return total_ <= 0.0; }

    double sample(Rng &rng) const;

    double mean() const;

  private:
    struct Bucket
    {
        double lo;
        double hi;
        double weight;
    };

    std::vector<Bucket> buckets_;
    std::vector<double> cumulative_;
    double total_ = 0.0;
};

} // namespace ditto::sim

#endif // DITTO_SIM_DISTRIBUTIONS_H_
