#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ditto::sim {

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    assert(cb && "scheduling a null callback");
    const Time effective = std::max(when, now_);

    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        assert(slots_.size() < kSlotMask && "too many pending events");
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }

    Slot &s = slots_[slot];
    s.seq = nextSeq_++;
    s.pending = true;
    s.cb = std::move(cb);

    const EventId id = (s.seq << kSlotBits) | slot;
    heap_.push(HeapItem{effective, id});
    ++liveEvents_;
    return id;
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (!s.pending || s.seq != (id >> kSlotBits))
        return false;  // already fired, already cancelled, or bogus id
    s.pending = false;
    s.cb.reset();  // release captured resources immediately
    freeSlots_.push_back(slot);
    --liveEvents_;
    // The heap still holds a stale item for this id; it is skipped
    // (sequence mismatch / non-pending slot) when it reaches the top.
    return true;
}

bool
EventQueue::isLive(EventId id) const
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    const Slot &s = slots_[slot];
    return s.pending && s.seq == (id >> kSlotBits);
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        const HeapItem item = heap_.top();
        heap_.pop();
        if (!isLive(item.id))
            continue;  // cancelled: drop the stale item
        const std::uint32_t slot =
            static_cast<std::uint32_t>(item.id & kSlotMask);
        assert(item.when >= now_ && "time went backwards");
        now_ = item.when;

        // Move the callback out and free the slot *before* invoking:
        // the callback may schedule new events, which can recycle the
        // slot or grow the pool.
        Callback cb = std::move(slots_[slot].cb);
        slots_[slot].pending = false;
        freeSlots_.push_back(slot);
        --liveEvents_;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Time limit)
{
    std::uint64_t count = 0;
    while (!heap_.empty()) {
        // Drop stale (cancelled) items so top() is the next live event.
        if (!isLive(heap_.top().id)) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > limit)
            break;
        if (!runOne())
            break;
        ++count;
    }
    // Even if no event fired at `limit`, the caller observed that much
    // simulated time pass.
    now_ = std::max(now_, limit);
    return count;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t count = 0;
    while (runOne())
        ++count;
    return count;
}

} // namespace ditto::sim
