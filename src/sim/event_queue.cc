#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <string_view>

namespace ditto::sim {

EventQueue::EventQueue() : EventQueue(defaultBackend())
{
}

EventQueue::EventQueue(Backend backend) : backend_(backend)
{
    if (backend_ == Backend::Wheel)
        wheel_ = std::make_unique<WheelState>();
}

EventQueue::Backend
EventQueue::defaultBackend()
{
    static const Backend kDefault = [] {
        const char *env = std::getenv("DITTO_EVENT_QUEUE");
        return env && std::string_view(env) == "heap"
            ? Backend::Heap
            : Backend::Wheel;
    }();
    return kDefault;
}

EventId
EventQueue::makeEvent(Callback cb)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        assert(slots_.size() < kSlotMask && "too many pending events");
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }

    Slot &s = slots_[slot];
    s.seq = nextSeq_++;
    s.pending = true;
    s.cb = std::move(cb);
    ++liveEvents_;
    return (s.seq << kSlotBits) | slot;
}

EventQueue::Callback
EventQueue::takeCallback(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule new events, which can recycle the slot or
    // grow the pool.
    Callback cb = std::move(slots_[slot].cb);
    slots_[slot].pending = false;
    freeSlots_.push_back(slot);
    --liveEvents_;
    return cb;
}

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    assert(cb && "scheduling a null callback");
    const Time effective = std::max(when, now_);
    const EventId id = makeEvent(std::move(cb));
    if (backend_ == Backend::Wheel)
        wheelInsert(effective, id);
    else
        heap_.push(QueueItem{effective, id});
    return id;
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (!s.pending || s.seq != (id >> kSlotBits))
        return false;  // already fired, already cancelled, or bogus id
    s.pending = false;
    s.cb.reset();  // release captured resources immediately
    freeSlots_.push_back(slot);
    --liveEvents_;
    // The wheel slot (or heap) still holds a stale item for this id;
    // it is recognised (sequence mismatch / non-pending slot) and
    // dropped during compaction, cascade, or pop.
    return true;
}

bool
EventQueue::isLive(EventId id) const
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    const Slot &s = slots_[slot];
    return s.pending && s.seq == (id >> kSlotBits);
}

// ---- wheel internals ------------------------------------------------

void
EventQueue::wheelSetBit(unsigned level, unsigned idx)
{
    wheel_->occupied[level][idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void
EventQueue::wheelClearBit(unsigned level, unsigned idx)
{
    wheel_->occupied[level][idx >> 6] &=
        ~(std::uint64_t{1} << (idx & 63));
}

unsigned
EventQueue::wheelFirstOccupied(unsigned level) const
{
    const std::uint64_t *words = wheel_->occupied[level];
    for (unsigned w = 0; w < kWheelSlots / 64; ++w) {
        if (words[w] != 0) {
            return w * 64 +
                static_cast<unsigned>(std::countr_zero(words[w]));
        }
    }
    return kWheelSlots;
}

void
EventQueue::wheelInsert(Time when, EventId id)
{
    WheelState &w = *wheel_;
    assert(when >= w.cursor && "insert behind the cascade cursor");
    for (unsigned level = 0; level < kWheelLevels; ++level) {
        const unsigned spanBits = kWheelBits * (level + 1);
        const Time span = Time{1} << spanBits;
        const Time windowStart = w.cursor & ~(span - 1);
        if (when - windowStart < span) {
            const auto idx = static_cast<unsigned>(
                (when >> (kWheelBits * level)) & kWheelSlotMask);
            w.slots[level][idx].push_back(QueueItem{when, id});
            wheelSetBit(level, idx);
            return;
        }
    }
    w.far.push(QueueItem{when, id});
}

bool
EventQueue::wheelCompactSlot(unsigned level, unsigned idx)
{
    std::vector<QueueItem> &slot = wheel_->slots[level][idx];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
        if (isLive(slot[i].id))
            slot[kept++] = slot[i];
    }
    slot.resize(kept);
    if (kept == 0) {
        wheelClearBit(level, idx);
        return false;
    }
    return true;
}

Time
EventQueue::wheelNextLiveTime(Time bound)
{
    WheelState &w = *wheel_;
    constexpr Time kEpochSpan = Time{1}
        << (kWheelBits * kWheelLevels);  // 2^32 ns

    for (;;) {
        // Level 0: the lowest occupied slot with a survivor holds the
        // earliest live timestamp (live L0 items all sit in the
        // cursor's 256ns window, so slot index order is time order;
        // lower-index slots can only contain cancelled leftovers from
        // earlier windows, which compaction drops).
        const unsigned idx0 = wheelFirstOccupied(0);
        if (idx0 < kWheelSlots) {
            if (!wheelCompactSlot(0, idx0))
                continue;
            return w.slots[0][idx0].front().when;
        }

        // Cascade the earliest occupied slot of the shallowest
        // non-empty level, but never advance the cursor past `bound`:
        // a later runUntil() only moves now() to its limit, and new
        // events clamp to now(), so the cursor must not outrun it.
        unsigned level = 1;
        unsigned idx = kWheelSlots;
        while (level < kWheelLevels &&
               (idx = wheelFirstOccupied(level)) >= kWheelSlots) {
            ++level;
        }
        if (level < kWheelLevels) {
            if (!wheelCompactSlot(level, idx))
                continue;
            const Time slotWidth = Time{1} << (kWheelBits * level);
            const Time span = slotWidth << kWheelBits;
            const Time windowStart = w.cursor & ~(span - 1);
            const Time slotStart = windowStart + idx * slotWidth;
            if (slotStart > bound)
                return kTimeNever;
            assert(slotStart >= w.cursor);
            w.cursor = slotStart;
            // Re-place the slot's items; each lands at a strictly
            // shallower level because its timestamp is within one
            // level-(k-1) span of the new cursor.
            std::vector<QueueItem> items =
                std::move(w.slots[level][idx]);
            w.slots[level][idx].clear();
            wheelClearBit(level, idx);
            for (const QueueItem &item : items)
                wheelInsert(item.when, item.id);
            continue;
        }

        // Whole wheel empty: pull the next live epoch from the far
        // heap. Far items are >= one full top-level span ahead of the
        // cursor (any epoch the cursor entered was drained into the
        // wheel at entry), so the wheel-first drain order is exact.
        while (!w.far.empty() && !isLive(w.far.top().id))
            w.far.pop();
        if (w.far.empty())
            return kTimeNever;
        const Time t = w.far.top().when;
        if (t > bound)
            return kTimeNever;
        w.cursor = std::max(w.cursor, t & ~(kEpochSpan - 1));
        const Time epochEnd =
            (w.cursor & ~(kEpochSpan - 1)) + kEpochSpan;
        while (!w.far.empty() && w.far.top().when < epochEnd) {
            const QueueItem item = w.far.top();
            w.far.pop();
            if (isLive(item.id))
                wheelInsert(item.when, item.id);
        }
    }
}

EventQueue::QueueItem
EventQueue::wheelPopFront()
{
    WheelState &w = *wheel_;
    const unsigned idx = wheelFirstOccupied(0);
    assert(idx < kWheelSlots && "pop from an empty wheel");
    std::vector<QueueItem> &slot = w.slots[0][idx];
    // One L0 slot holds exactly one timestamp, so FIFO among equals
    // is the minimum id (sequence dominates the id's high bits).
    std::size_t best = 0;
    for (std::size_t i = 1; i < slot.size(); ++i) {
        assert(slot[i].when == slot[best].when);
        if (slot[i].id < slot[best].id)
            best = i;
    }
    const QueueItem item = slot[best];
    slot[best] = slot.back();
    slot.pop_back();
    if (slot.empty())
        wheelClearBit(0, idx);
    return item;
}

// ---- heap internals -------------------------------------------------

bool
EventQueue::heapSkimDead()
{
    while (!heap_.empty() && !isLive(heap_.top().id))
        heap_.pop();
    return !heap_.empty();
}

// ---- execution ------------------------------------------------------

bool
EventQueue::runOne()
{
    QueueItem item;
    if (backend_ == Backend::Wheel) {
        if (wheelNextLiveTime(kTimeNever) == kTimeNever)
            return false;
        item = wheelPopFront();
    } else {
        if (!heapSkimDead())
            return false;
        item = heap_.top();
        heap_.pop();
    }
    assert(item.when >= now_ && "time went backwards");
    now_ = item.when;
    Callback cb = takeCallback(item.id);
    ++executed_;
    cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Time limit)
{
    std::uint64_t count = 0;
    for (;;) {
        Time next;
        if (backend_ == Backend::Wheel) {
            next = wheelNextLiveTime(limit);
        } else {
            next = heapSkimDead() ? heap_.top().when : kTimeNever;
        }
        if (next == kTimeNever || next > limit)
            break;
        if (!runOne())
            break;
        ++count;
    }
    // Even if no event fired at `limit`, the caller observed that much
    // simulated time pass.
    now_ = std::max(now_, limit);
    return count;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t count = 0;
    while (runOne())
        ++count;
    return count;
}

} // namespace ditto::sim
