#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ditto::sim {

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    assert(cb && "scheduling a null callback");
    const Time effective = std::max(when, now_);
    const EventId id = nextId_++;
    heap_.push(Entry{effective, id, std::move(cb)});
    ++liveEvents_;
    return id;
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    if (isCancelled(id))
        return false;
    // Lazy deletion: remember the id; skip it when popped. We cannot
    // cheaply verify membership in the heap, so only count live events
    // down when the entry is actually skipped in runOne().
    cancelled_.push_back(id);
    std::push_heap(cancelled_.begin(), cancelled_.end(),
                   std::greater<>());
    return true;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
        cancelled_.end();
}

void
EventQueue::dropCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end()) {
        cancelled_.erase(it);
        std::make_heap(cancelled_.begin(), cancelled_.end(),
                       std::greater<>());
    }
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        // priority_queue::top() is const; we need to move the callback
        // out, so copy the POD bits and pop first.
        Entry entry = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        if (isCancelled(entry.id)) {
            dropCancelled(entry.id);
            --liveEvents_;
            continue;
        }
        assert(entry.when >= now_ && "time went backwards");
        now_ = entry.when;
        --liveEvents_;
        ++executed_;
        entry.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Time limit)
{
    std::uint64_t count = 0;
    while (!heap_.empty()) {
        // Peek through cancelled entries to find the next live event.
        if (isCancelled(heap_.top().id)) {
            dropCancelled(heap_.top().id);
            heap_.pop();
            --liveEvents_;
            continue;
        }
        if (heap_.top().when > limit)
            break;
        if (!runOne())
            break;
        ++count;
    }
    // Even if no event fired at `limit`, the caller observed that much
    // simulated time pass.
    now_ = std::max(now_, limit);
    return count;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t count = 0;
    while (runOne())
        ++count;
    return count;
}

} // namespace ditto::sim
