#include "sim/rng.h"

#include <cmath>

namespace ditto::sim {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        return 0;
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        return 0.0;
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    // Box-Muller; uses a fresh pair each call for stream simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplicative method.
        const double limit = std::exp(-mean);
        double product = uniform();
        std::uint64_t count = 0;
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation with continuity correction for large means.
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

Rng
Rng::split()
{
    std::uint64_t seed = (*this)();
    return Rng(seed);
}

} // namespace ditto::sim
