/**
 * @file
 * Simulated time. The whole framework uses a single integral
 * nanosecond-resolution clock; helpers convert from human units.
 */

#ifndef DITTO_SIM_TIME_H_
#define DITTO_SIM_TIME_H_

#include <cstdint>

namespace ditto::sim {

/** Simulated time in nanoseconds since simulation start. */
using Time = std::uint64_t;

/** Sentinel meaning "never" / "no deadline". */
inline constexpr Time kTimeNever = ~Time{0};

inline constexpr Time
nanoseconds(std::uint64_t n)
{
    return n;
}

inline constexpr Time
microseconds(std::uint64_t us)
{
    return us * 1000ull;
}

inline constexpr Time
milliseconds(std::uint64_t ms)
{
    return ms * 1000000ull;
}

inline constexpr Time
seconds(std::uint64_t s)
{
    return s * 1000000000ull;
}

/** Convert a simulated duration to fractional milliseconds. */
inline constexpr double
toMilliseconds(Time t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert a simulated duration to fractional microseconds. */
inline constexpr double
toMicroseconds(Time t)
{
    return static_cast<double>(t) / 1e3;
}

/** Convert a simulated duration to fractional seconds. */
inline constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / 1e9;
}

} // namespace ditto::sim

#endif // DITTO_SIM_TIME_H_
