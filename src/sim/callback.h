/**
 * @file
 * InlineCallback: a move-only `void()` callable with small-buffer
 * storage, used for event-queue callbacks.
 *
 * std::function's inline buffer (16 bytes on common ABIs) is too
 * small for the typical simulator callback, which captures `this`
 * plus two or three words of arguments, so nearly every scheduled
 * event used to heap-allocate. InlineCallback stores callables up to
 * kInlineBytes in place; only outsized captures fall back to the
 * heap. Combined with EventQueue's pooled entries this removes the
 * per-event allocation from the simulation hot path.
 */

#ifndef DITTO_SIM_CALLBACK_H_
#define DITTO_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ditto::sim {

class InlineCallback
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f)  // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineImpl<Fn>::ops;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            ops_ = &HeapImpl<Fn>::ops;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        if (other.ops_)
            other.ops_->relocate(other, *this);
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            if (other.ops_)
                other.ops_->relocate(other, *this);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(*this);
    }

    /** Destroy the held callable, if any. */
    void
    reset() noexcept
    {
        if (ops_)
            ops_->destroy(*this);
    }

  private:
    struct Ops
    {
        void (*invoke)(InlineCallback &);
        void (*relocate)(InlineCallback &src,
                         InlineCallback &dst) noexcept;
        void (*destroy)(InlineCallback &) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        // Relocate is noexcept, so inline storage additionally
        // requires a nothrow move constructor.
        return sizeof(Fn) <= kInlineBytes &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineImpl
    {
        static Fn &
        get(InlineCallback &c)
        {
            return *std::launder(reinterpret_cast<Fn *>(c.buf_));
        }

        static void
        invoke(InlineCallback &c)
        {
            get(c)();
        }

        static void
        relocate(InlineCallback &src, InlineCallback &dst) noexcept
        {
            ::new (static_cast<void *>(dst.buf_))
                Fn(std::move(get(src)));
            get(src).~Fn();
            dst.ops_ = src.ops_;
            src.ops_ = nullptr;
        }

        static void
        destroy(InlineCallback &c) noexcept
        {
            get(c).~Fn();
            c.ops_ = nullptr;
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapImpl
    {
        static void
        invoke(InlineCallback &c)
        {
            (*static_cast<Fn *>(c.heap_))();
        }

        static void
        relocate(InlineCallback &src, InlineCallback &dst) noexcept
        {
            dst.heap_ = src.heap_;
            dst.ops_ = src.ops_;
            src.heap_ = nullptr;
            src.ops_ = nullptr;
        }

        static void
        destroy(InlineCallback &c) noexcept
        {
            delete static_cast<Fn *>(c.heap_);
            c.heap_ = nullptr;
            c.ops_ = nullptr;
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void *heap_ = nullptr;
    const Ops *ops_ = nullptr;
};

} // namespace ditto::sim

#endif // DITTO_SIM_CALLBACK_H_
