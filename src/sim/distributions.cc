#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ditto::sim {

namespace {

double
zetaStatic(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfDist::ZipfDist(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta)
{
    zetan_ = zetaStatic(n_, theta_);
    zeta2_ = zetaStatic(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
        (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfDist::sample(Rng &rng) const
{
    if (theta_ == 0.0)
        return rng.uniformInt(n_);

    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto item = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(item, n_ - 1);
}

void
EmpiricalDist::add(std::int64_t value, double weight)
{
    if (weight <= 0.0)
        return;
    values_.push_back(value);
    weights_.push_back(weight);
    total_ += weight;
    cumulative_.push_back(total_);
}

std::int64_t
EmpiricalDist::sample(Rng &rng) const
{
    assert(!empty() && "sampling from an empty distribution");
    const double target = rng.uniform() * total_;
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     values_.size() - 1)));
    return values_[idx];
}

double
EmpiricalDist::probabilityOf(std::int64_t value) const
{
    if (total_ <= 0.0)
        return 0.0;
    double mass = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (values_[i] == value)
            mass += weights_[i];
    }
    return mass / total_;
}

double
EmpiricalDist::mean() const
{
    if (total_ <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        sum += static_cast<double>(values_[i]) * weights_[i];
    return sum / total_;
}

void
RangeDist::add(double lo, double hi, double weight)
{
    if (weight <= 0.0 || hi < lo)
        return;
    buckets_.push_back({lo, hi, weight});
    total_ += weight;
    cumulative_.push_back(total_);
}

double
RangeDist::sample(Rng &rng) const
{
    assert(!empty() && "sampling from an empty range distribution");
    const double target = rng.uniform() * total_;
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     buckets_.size() - 1)));
    const Bucket &b = buckets_[idx];
    return rng.uniform(b.lo, b.hi);
}

double
RangeDist::mean() const
{
    if (total_ <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (const Bucket &b : buckets_)
        sum += 0.5 * (b.lo + b.hi) * b.weight;
    return sum / total_;
}

} // namespace ditto::sim
