/**
 * @file
 * RunExecutor: deterministic parallel execution of independent
 * simulation runs.
 *
 * Every experiment in the reproduction is a sequence of fully
 * independent seeded simulations (app x load x platform x generation
 * stage x fault scenario). Each submitted task constructs its own
 * EventQueue + Deployment + seeded Rngs and returns a result struct;
 * the executor fans tasks out across worker threads and hands the
 * results back **in submission order**, so any table, histogram or
 * error accumulator built from them is byte-identical to a serial
 * run. Parallelism changes wall-clock time only, never results.
 *
 * Concurrency model:
 *  - jobs() == 1: tasks run inline on the caller's thread; no worker
 *    threads exist at all (`--jobs 1` *is* the serial program).
 *  - jobs()  > 1: a fixed pool of jobs()-1 workers plus the caller.
 *    A thread blocked in runOrdered() "help-runs" queued tasks, so
 *    nested submission (e.g. fine-tune candidates inside a cloning
 *    task) cannot deadlock.
 *
 * Exceptions thrown by a task are captured and rethrown from
 * runOrdered() at that task's position.
 */

#ifndef DITTO_SIM_RUN_EXECUTOR_H_
#define DITTO_SIM_RUN_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ditto::sim {

class RunExecutor
{
  public:
    /**
     * @param jobs worker parallelism; 0 means defaultJobs().
     */
    explicit RunExecutor(unsigned jobs = 0);
    ~RunExecutor();

    RunExecutor(const RunExecutor &) = delete;
    RunExecutor &operator=(const RunExecutor &) = delete;

    /** Configured parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Parallelism when none is requested explicitly: the DITTO_JOBS
     * environment variable if set and positive, otherwise
     * hardware_concurrency(), floored at 1.
     */
    static unsigned defaultJobs();

    /**
     * Resolve `--jobs N` / `--jobs=N` from a command line, falling
     * back to defaultJobs(). Unrelated arguments are ignored.
     */
    static unsigned jobsFromArgs(int argc, char **argv);

    /** Queue one task; the future carries its result or exception. */
    template <typename Fn,
              typename R = std::invoke_result_t<std::decay_t<Fn>>>
    std::future<R>
    submit(Fn &&fn)
    {
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        if (jobs_ <= 1) {
            (*task)();  // inline: the serial path has no threads
            return fut;
        }
        post([task] { (*task)(); });
        return fut;
    }

    /**
     * Run all tasks and return their results **in submission order**,
     * regardless of completion order. The calling thread participates
     * in execution. If a task threw, the exception is rethrown when
     * its position is reached.
     */
    template <typename R>
    std::vector<R>
    runOrdered(std::vector<std::function<R()>> tasks)
    {
        std::vector<R> results;
        results.reserve(tasks.size());
        if (jobs_ <= 1) {
            for (auto &t : tasks)
                results.push_back(t());
            return results;
        }
        std::vector<std::future<R>> futures;
        futures.reserve(tasks.size());
        for (auto &t : tasks)
            futures.push_back(submit(std::move(t)));
        for (auto &fut : futures) {
            waitHelping(fut);
            results.push_back(fut.get());
        }
        return results;
    }

    /**
     * Wait for one future while helping execute queued tasks, then
     * return its value (or rethrow its exception). Use instead of
     * future::get() on threads that share this executor.
     */
    template <typename R>
    R
    collect(std::future<R> fut)
    {
        if (jobs_ > 1)
            waitHelping(fut);
        return fut.get();
    }

    /** Map `fn` over `items`; results in item order. */
    template <typename In, typename Fn,
              typename R = std::invoke_result_t<std::decay_t<Fn>,
                                                const In &>>
    std::vector<R>
    map(const std::vector<In> &items, Fn fn)
    {
        std::vector<std::function<R()>> tasks;
        tasks.reserve(items.size());
        for (const In &item : items)
            tasks.push_back([&item, fn] { return fn(item); });
        return runOrdered<R>(std::move(tasks));
    }

  private:
    void post(std::function<void()> task);

    /** Execute one queued task on this thread, if any. */
    bool tryRunOne();

    /** Block on `fut`, executing queued tasks while it is not ready. */
    template <typename R>
    void
    waitHelping(std::future<R> &fut)
    {
        using namespace std::chrono_literals;
        while (fut.wait_for(0s) != std::future_status::ready) {
            if (!tryRunOne())
                fut.wait_for(200us);
        }
    }

    void workerLoop();

    unsigned jobs_ = 1;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace ditto::sim

#endif // DITTO_SIM_RUN_EXECUTOR_H_
