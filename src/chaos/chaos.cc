#include "chaos/chaos.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>

#include "app/deployment.h"
#include "cluster/failover.h"
#include "cluster/placer.h"
#include "cluster/region.h"
#include "cluster/topo_gen.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "os/network.h"
#include "profile/probe_collector.h"
#include "sim/rng.h"
#include "workload/engine.h"
#include "workload/loadgen.h"

namespace ditto::chaos {

namespace {

std::string
machineName(unsigned i)
{
    return "m" + std::to_string(i);
}

std::string
serviceName(unsigned idx)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "s%04u", idx);
    return buf;
}

std::string
regionName(unsigned i)
{
    return "r" + std::to_string(i);
}

/** printf into a std::string (violation / reproducer lines). */
std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

/**
 * The fuzzed deployment: a seeded layered topology with every
 * request-lifecycle mechanism armed, two replicated level-1 services
 * (so hedging has somewhere to go), and a probe on every instance.
 *
 * With cfg.regions > 0 every machine lives in a region ("r0"..) over
 * a seeded WAN mesh, the root balances prefer-local into the
 * replicated groups, replicas spread across regions, and a
 * RegionFailoverMonitor per replicated group retires dark regions --
 * so region fault windows actually exercise re-routing.
 */
struct ChaosWorld
{
    app::Deployment dep;
    cluster::GeneratedTopology topo;
    app::ServiceInstance *root = nullptr;
    obs::MetricsRegistry metrics;
    std::vector<std::unique_ptr<profile::ProbeCollector>> probes;
    std::vector<std::unique_ptr<cluster::RegionFailoverMonitor>>
        monitors;

    explicit ChaosWorld(const ChaosConfig &cfg) : dep(cfg.seed)
    {
        cluster::TopoSpec ts;
        ts.services = cfg.services;
        ts.depth = cfg.depth;
        ts.rpcDeadline = sim::milliseconds(2);
        ts.workersPerService = 2;
        ts.seed = cfg.seed;
        if (cfg.prodShapes) {
            ts.endpointsPerService = 2;
            ts.sharedBackends = 2;
            ts.fanoutTailAlpha = 1.2;
            ts.diamondProbability = 0.35;
        }
        topo = cluster::generateTopology(ts);
        // Hedging engages on sync calls into replicated groups; the
        // root is the sole caller of the replicated level-1 services,
        // so make sure it is a sync client.
        topo.specs[0].clientModel = app::ClientModel::Sync;
        if (cfg.regions > 0) {
            // Hedge-locality under test: the root only crosses
            // regions when no local replica is usable.
            topo.specs[0].balancing.defaultPolicy =
                cluster::BalancerPolicy::PreferLocal;
        }
        for (std::size_t i = 0; i < topo.specs.size(); ++i) {
            app::ResilienceSpec &res = topo.specs[i].resilience;
            res.retry.maxAttempts = 2;
            res.retry.baseBackoff = sim::microseconds(100);
            res.retry.maxBackoff = sim::milliseconds(1);
            res.shedQueueThreshold = 64;
            res.propagateDeadline = true;
            res.hopMargin = sim::microseconds(100);
            res.cancellation = true;
            if (i % 3 == 0) {
                res.breaker.enabled = true;
                res.breaker.failureThreshold = 3;
                res.breaker.openDuration = sim::milliseconds(2);
            }
            if (i % 2 == 0) {
                res.hedge.enabled = true;
                res.hedge.delay = sim::microseconds(300);
            }
            if (cfg.overload) {
                app::OverloadSpec &ov = res.overload;
                ov.enabled = true;
                ov.initialLimit = 48;
                ov.minLimit = 4;
                ov.window = 16;
                ov.maxSojourn = sim::milliseconds(2);
                ov.deadlineAware = true;
                ov.brownout = true;
                res.retry.budgetRatio = 0.1;
                // Mark the tail call of multi-call fanouts as a
                // brownout candidate so congested windows actually
                // exercise the skip path.
                for (app::EndpointSpec &ep : topo.specs[i].endpoints)
                    for (app::Op &op : ep.handler.ops)
                        if (op.kind == app::OpKind::Rpc &&
                            op.rpcs.size() > 1)
                            op.rpcs.back().optional = true;
            }
        }
        if (cfg.regions == 0) {
            root = &cluster::deployTopology(dep, topo, cfg.machines);
        } else {
            // Region world: same machine pool size, but spread over
            // cfg.regions regions meshed by short seeded WAN links
            // (no ambient bursts -- WAN drops come from fault
            // windows, so ledger violations shrink to their cause).
            const unsigned perRegion =
                std::max(1u, (cfg.machines + cfg.regions - 1) /
                             cfg.regions);
            std::vector<cluster::RegionSpec> regions;
            for (unsigned r = 0; r < cfg.regions; ++r)
                regions.push_back({regionName(r), perRegion});
            cluster::WanProfile wan;
            wan.baseLatency = sim::microseconds(80);
            wan.latencySpread = sim::microseconds(40);
            wan.seed = cfg.seed;
            cluster::buildRegions(dep, regions, wan);

            cluster::Placer placer;
            const std::size_t pool = dep.machines().size();
            const auto slots = static_cast<unsigned>(
                (topo.specs.size() + pool - 1) / pool);
            for (const auto &m : dep.machines())
                placer.addMachine(*m, slots);
            for (const app::ServiceSpec &s : topo.specs)
                dep.deploy(s, placer.place());
            dep.wireAll();
            root = dep.find(topo.specs.front().name);
        }

        // Replicate the first two level-1 services so hedges and the
        // balancer's replica exclusion actually engage. In the region
        // world each replica lands in a different region than the
        // monitor's view, with a failover monitor watching the group.
        unsigned replicated = 0;
        for (std::size_t i = 0;
             i < topo.specs.size() && replicated < 2; ++i) {
            if (topo.level[i] != 1)
                continue;
            if (cfg.regions > 0) {
                dep.addReplicaInRegion(
                    topo.specs[i].name,
                    regionName((replicated + 1) % cfg.regions));
                cluster::RegionFailoverSpec fs;
                fs.period = sim::milliseconds(1);
                fs.failureThreshold = 2;
                fs.viewRegion = root->machine().regionId();
                monitors.push_back(
                    std::make_unique<cluster::RegionFailoverMonitor>(
                        dep, topo.specs[i].name, metrics, fs));
            } else {
                dep.addReplica(
                    topo.specs[i].name,
                    *dep.machines()[replicated %
                                    dep.machines().size()]);
            }
            ++replicated;
        }
        for (const auto &m : monitors)
            m->start();

        for (const auto &svc : dep.services()) {
            probes.push_back(
                std::make_unique<profile::ProbeCollector>());
            svc->setProbe(probes.back().get());
        }
    }
};

/** Sum of probe counts for one kind across all instances. */
std::uint64_t
probeTotal(const ChaosWorld &w, trace::OutcomeKind kind)
{
    std::uint64_t total = 0;
    for (const auto &p : w.probes)
        total += p->outcomeCount(kind);
    return total;
}

/**
 * Client-side outcome counters, fillable from either client model
 * (LoadGen or WorkloadEngine) so the invariants are model-agnostic.
 */
struct ClientCounts
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t error = 0;
    std::uint64_t shed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t late = 0;
    std::uint64_t cancels = 0;
    std::uint64_t inFlight = 0;
};

ClientCounts
countsOf(const workload::LoadGen &lg)
{
    ClientCounts cc;
    cc.sent = lg.sent();
    cc.ok = lg.completedOk();
    cc.error = lg.completedError();
    cc.shed = lg.completedShed();
    cc.timedOut = lg.timedOut();
    cc.late = lg.lateResponses();
    cc.cancels = lg.cancelsSent();
    return cc;
}

ClientCounts
countsOf(const workload::WorkloadEngine &eng)
{
    ClientCounts cc;
    cc.sent = eng.sent();
    cc.ok = eng.completedOk();
    cc.error = eng.completedError();
    cc.shed = eng.completedShed();
    cc.timedOut = eng.timedOut();
    cc.late = eng.lateResponses();
    cc.cancels = eng.cancelsSent();
    cc.inFlight = eng.inFlight();
    return cc;
}

void
checkInvariants(const ChaosConfig &cfg, ChaosWorld &w,
                const ClientCounts &cc,
                std::vector<std::string> &out)
{
    using trace::OutcomeKind;
    const os::Network &net = w.dep.network();

    // (1) Network message ledger. The planted fixture bug "forgets"
    // that faults drop messages, so any drop becomes a violation --
    // the fuzzer must catch it and shrink the plan that caused it.
    const std::uint64_t accountedDrops =
        cfg.plantLedgerBug ? 0 : net.messagesDropped();
    if (net.messagesSent() !=
        net.messagesDelivered() + accountedDrops +
            net.messagesInFlight()) {
        out.push_back(format(
            "net-msg-ledger: sent %llu != delivered %llu + "
            "dropped %llu + in-flight %llu",
            (unsigned long long)net.messagesSent(),
            (unsigned long long)net.messagesDelivered(),
            (unsigned long long)accountedDrops,
            (unsigned long long)net.messagesInFlight()));
    }

    // (2) Network byte ledger (exact at quiescence; a non-empty
    // in-flight set is reported by the orphan check below).
    if (net.messagesInFlight() == 0 &&
        net.bytesSent() != net.bytesDelivered() + net.bytesDropped()) {
        out.push_back(format(
            "net-byte-ledger: sent %llu != delivered %llu + "
            "dropped %llu",
            (unsigned long long)net.bytesSent(),
            (unsigned long long)net.bytesDelivered(),
            (unsigned long long)net.bytesDropped()));
    }

    // (3) Client-side conservation: every sent request settles (the
    // in-flight term is zero after a sufficient drain).
    const std::uint64_t settled =
        cc.ok + cc.error + cc.shed + cc.timedOut + cc.inFlight;
    if (cc.sent != settled) {
        out.push_back(format(
            "client-conservation: sent %llu != ok %llu + error %llu "
            "+ shed %llu + timeout %llu + in-flight %llu",
            (unsigned long long)cc.sent, (unsigned long long)cc.ok,
            (unsigned long long)cc.error,
            (unsigned long long)cc.shed,
            (unsigned long long)cc.timedOut,
            (unsigned long long)cc.inFlight));
    }

    // (4-7) Per-service books.
    for (std::size_t i = 0; i < w.dep.services().size(); ++i) {
        app::ServiceInstance &svc = *w.dep.services()[i];
        const app::ServiceStats &s = svc.stats();
        const profile::ProbeCollector &p = *w.probes[i];
        const std::string &label = svc.instanceLabel();

        // (4) RPC outcome conservation: every call entered settles
        // exactly once.
        const std::uint64_t settledCalls = s.rpcOk + s.rpcTimeouts +
            s.rpcBreakerFastFails + s.rpcCancelled;
        if (s.rpcCallsStarted != settledCalls) {
            out.push_back(format(
                "rpc-conservation[%s]: started %llu != ok %llu + "
                "timeout %llu + breaker %llu + cancelled %llu",
                label.c_str(),
                (unsigned long long)s.rpcCallsStarted,
                (unsigned long long)s.rpcOk,
                (unsigned long long)s.rpcTimeouts,
                (unsigned long long)s.rpcBreakerFastFails,
                (unsigned long long)s.rpcCancelled));
        }

        // (5) No orphan in-flight work after the drain.
        if (svc.activeRequests() != 0)
            out.push_back(format(
                "orphan-request[%s]: %llu requests still active "
                "after drain", label.c_str(),
                (unsigned long long)svc.activeRequests()));
        if (svc.inboundQueueDepth() != 0)
            out.push_back(format(
                "orphan-queue[%s]: %llu requests still queued "
                "after drain", label.c_str(),
                (unsigned long long)svc.inboundQueueDepth()));

        // (6) Stats <-> probe reconciliation.
        struct Pair
        {
            const char *name;
            std::uint64_t stat;
            std::uint64_t probe;
        };
        const Pair pairs[] = {
            {"rpc_ok", s.rpcOk,
             p.outcomeCount(OutcomeKind::RpcOk) +
                 p.outcomeCount(OutcomeKind::RpcRetriedOk) +
                 p.outcomeCount(OutcomeKind::RpcHedgeWon)},
            {"rpc_timeouts", s.rpcTimeouts,
             p.outcomeCount(OutcomeKind::RpcTimeout)},
            {"rpc_breaker", s.rpcBreakerFastFails,
             p.outcomeCount(OutcomeKind::RpcBreakerOpen)},
            {"rpc_cancelled", s.rpcCancelled,
             p.outcomeCount(OutcomeKind::RpcCancelled)},
            {"hedge_wins", s.rpcHedgeWins,
             p.outcomeCount(OutcomeKind::RpcHedgeWon)},
            {"requests_shed", s.requestsShed,
             p.outcomeCount(OutcomeKind::RequestShed)},
            {"requests_degraded", s.requestsDegraded,
             p.outcomeCount(OutcomeKind::RequestError)},
            {"requests_cancelled", s.requestsCancelled,
             p.outcomeCount(OutcomeKind::RequestCancelled)},
        };
        for (const Pair &pr : pairs) {
            if (pr.stat != pr.probe)
                out.push_back(format(
                    "stats-probe[%s].%s: stats %llu != probe %llu",
                    label.c_str(), pr.name,
                    (unsigned long long)pr.stat,
                    (unsigned long long)pr.probe));
        }

        // (7) Hedges never outnumber their launches.
        if (s.rpcHedgeWins > s.rpcHedges)
            out.push_back(format(
                "hedge-books[%s]: wins %llu > hedges %llu",
                label.c_str(), (unsigned long long)s.rpcHedgeWins,
                (unsigned long long)s.rpcHedges));
    }

    if (net.messagesInFlight() != 0)
        out.push_back(format(
            "orphan-network: %llu messages still in flight after "
            "drain",
            (unsigned long long)net.messagesInFlight()));

    // (8) Probe <-> tracer reconciliation: the probes collectively
    // saw exactly what the tracer's unsampled counters recorded.
    for (std::size_t k = 0; k < trace::kOutcomeKinds; ++k) {
        const auto kind = static_cast<OutcomeKind>(k);
        const std::uint64_t probes = probeTotal(w, kind);
        const std::uint64_t traced =
            w.dep.tracer().outcomeCount(kind);
        if (probes != traced)
            out.push_back(format(
                "probe-tracer[%s]: probes %llu != tracer %llu",
                trace::outcomeKindName(kind),
                (unsigned long long)probes,
                (unsigned long long)traced));
    }

    // (9) Per-WAN-link ledgers: every directed region link accounts
    // each message and byte it carried exactly once, and none is
    // still in flight after the drain. The planted region fixture bug
    // "forgets" the per-link dropped term, the WAN-scoped twin of the
    // global planted ledger bug.
    for (const auto &entry : net.wanLinks()) {
        const os::WanLinkStats &ls = entry.second.stats;
        const std::string link =
            w.dep.regionName(entry.first.first) + "->" +
            w.dep.regionName(entry.first.second);
        const std::uint64_t wanDrops =
            cfg.plantWanLedgerBug ? 0 : ls.msgsDropped;
        if (ls.msgsSent !=
            ls.msgsDelivered + wanDrops + ls.msgsInFlight()) {
            out.push_back(format(
                "wan-msg-ledger[%s]: sent %llu != delivered %llu + "
                "dropped %llu + in-flight %llu",
                link.c_str(), (unsigned long long)ls.msgsSent,
                (unsigned long long)ls.msgsDelivered,
                (unsigned long long)wanDrops,
                (unsigned long long)ls.msgsInFlight()));
        }
        const std::uint64_t wanByteDrops =
            cfg.plantWanLedgerBug ? 0 : ls.bytesDropped;
        if (ls.msgsInFlight() == 0 &&
            ls.bytesSent != ls.bytesDelivered + wanByteDrops) {
            out.push_back(format(
                "wan-byte-ledger[%s]: sent %llu != delivered %llu + "
                "dropped %llu",
                link.c_str(), (unsigned long long)ls.bytesSent,
                (unsigned long long)ls.bytesDelivered,
                (unsigned long long)wanByteDrops));
        }
        if (ls.msgsInFlight() != 0)
            out.push_back(format(
                "orphan-wan[%s]: %llu messages still in flight "
                "after drain",
                link.c_str(),
                (unsigned long long)ls.msgsInFlight()));
    }

    // (10) Outcome conservation aggregated per region: failover
    // re-routing must not settle any call twice, nor lose one, in
    // either the failed or the surviving regions.
    if (w.dep.regionCount() > 1) {
        for (std::uint32_t r = 0;
             r < static_cast<std::uint32_t>(w.dep.regionCount());
             ++r) {
            std::uint64_t started = 0;
            std::uint64_t settledCalls = 0;
            bool hosts = false;
            for (const auto &svc : w.dep.services()) {
                if (svc->machine().regionId() != r)
                    continue;
                hosts = true;
                const app::ServiceStats &s = svc->stats();
                started += s.rpcCallsStarted;
                settledCalls += s.rpcOk + s.rpcTimeouts +
                    s.rpcBreakerFastFails + s.rpcCancelled;
            }
            if (hosts && started != settledCalls)
                out.push_back(format(
                    "region-conservation[%s]: started %llu != "
                    "settled %llu",
                    w.dep.regionName(r).c_str(),
                    (unsigned long long)started,
                    (unsigned long long)settledCalls));
        }
    }
}

} // namespace

OutcomeMix &
OutcomeMix::operator+=(const OutcomeMix &o)
{
    clientSent += o.clientSent;
    clientOk += o.clientOk;
    clientError += o.clientError;
    clientShed += o.clientShed;
    clientTimedOut += o.clientTimedOut;
    clientLate += o.clientLate;
    cancelsSent += o.cancelsSent;
    rpcOk += o.rpcOk;
    rpcTimeouts += o.rpcTimeouts;
    rpcBreakerFastFails += o.rpcBreakerFastFails;
    rpcCancelled += o.rpcCancelled;
    rpcHedges += o.rpcHedges;
    rpcHedgeWins += o.rpcHedgeWins;
    requestsShed += o.requestsShed;
    requestsCancelled += o.requestsCancelled;
    return *this;
}

fault::FaultPlan
generateRandomPlan(const ChaosConfig &cfg, std::uint64_t planSeed)
{
    sim::Rng rng(planSeed ^ 0xd1770c4a05ull);
    fault::FaultPlan plan;
    const unsigned span =
        cfg.maxFaults > cfg.minFaults ? cfg.maxFaults - cfg.minFaults
                                      : 0;
    const unsigned count = cfg.minFaults +
        static_cast<unsigned>(rng.uniformInt(span + 1));
    // Region kinds only join the sampling space in region worlds, so
    // a regions == 0 campaign draws exactly the pre-region sequence.
    const std::uint64_t kinds = cfg.regions > 0 ? 9 : 6;
    for (unsigned f = 0; f < count; ++f) {
        const auto kind = static_cast<fault::FaultKind>(
            rng.uniformInt(kinds));
        const auto start = static_cast<sim::Time>(
            rng.uniformInt(static_cast<std::uint64_t>(cfg.runFor)));
        const sim::Time duration = sim::microseconds(200) +
            static_cast<sim::Time>(rng.uniformInt(
                static_cast<std::uint64_t>(sim::milliseconds(5))));
        const std::string a =
            machineName(static_cast<unsigned>(
                rng.uniformInt(std::uint64_t{cfg.machines})));
        // Link peer: another machine, or the external client side.
        std::string b;
        if (cfg.machines > 1 && !rng.bernoulli(0.25)) {
            do {
                b = machineName(static_cast<unsigned>(
                    rng.uniformInt(std::uint64_t{cfg.machines})));
            } while (b == a);
        }
        switch (kind) {
          case fault::FaultKind::LinkDrop:
            plan.linkDrop(a, b, start, duration,
                          rng.uniform(0.2, 0.95));
            break;
          case fault::FaultKind::LinkLatency:
            plan.linkLatency(a, b, start, duration,
                             sim::microseconds(100) +
                                 static_cast<sim::Time>(rng.uniformInt(
                                     static_cast<std::uint64_t>(
                                         sim::microseconds(1500)))));
            break;
          case fault::FaultKind::Partition:
            plan.partition(a, b, start, duration);
            break;
          case fault::FaultKind::MachineCrash:
            plan.machineCrash(a, start, duration);
            break;
          case fault::FaultKind::ServiceCrash:
            plan.serviceCrash(
                serviceName(static_cast<unsigned>(
                    rng.uniformInt(std::uint64_t{cfg.services}))),
                start, duration);
            break;
          case fault::FaultKind::DiskSlowdown:
            plan.diskSlowdown(a, start, duration,
                              rng.uniform(2.0, 16.0));
            break;
          case fault::FaultKind::RegionPartition:
          case fault::FaultKind::RegionOutage:
          case fault::FaultKind::WanDegrade: {
            const std::string ra = regionName(static_cast<unsigned>(
                rng.uniformInt(std::uint64_t{cfg.regions})));
            // Region peer: another region, or empty = isolate `ra`
            // from every other region.
            std::string rb;
            if (cfg.regions > 1 && !rng.bernoulli(0.25)) {
                do {
                    rb = regionName(static_cast<unsigned>(
                        rng.uniformInt(std::uint64_t{cfg.regions})));
                } while (rb == ra);
            }
            if (kind == fault::FaultKind::RegionPartition)
                plan.regionPartition(ra, rb, start, duration);
            else if (kind == fault::FaultKind::RegionOutage)
                plan.regionOutage(ra, start, duration);
            else
                plan.wanDegrade(
                    ra, rb, start, duration, rng.uniform(0.1, 0.7),
                    sim::microseconds(50) +
                        static_cast<sim::Time>(rng.uniformInt(
                            static_cast<std::uint64_t>(
                                sim::microseconds(500)))));
            break;
          }
        }
    }
    return plan;
}

PlanRunResult
runPlan(const ChaosConfig &cfg, const fault::FaultPlan &plan)
{
    ChaosWorld w(cfg);

    std::unique_ptr<workload::LoadGen> lg;
    std::unique_ptr<workload::WorkloadEngine> eng;
    if (cfg.sessions) {
        workload::WorkloadSpec ws;
        // A session averages (minCalls+maxCalls)/2 calls, so divide
        // to keep the offered *call* rate comparable to cfg.qps.
        ws.sessionsPerSec = cfg.qps /
            ((ws.session.minCalls + ws.session.maxCalls) / 2.0);
        ws.connections = cfg.connections;
        ws.arrivals.kind = workload::ArrivalKind::Mmpp;
        ws.session.meanThink = sim::milliseconds(1);
        ws.classes[0].slo.deadline = cfg.clientTimeout;
        ws.timeout = cfg.clientTimeout;
        ws.propagateDeadline = true;
        ws.cancelOnTimeout = true;
        if (cfg.overload) {
            // Budgeted client retries: every retry is a fresh sent
            // call, so the conservation invariant is exercised with
            // the retry wave bounded at 10% of fresh traffic.
            ws.retry.maxAttempts = 2;
            ws.retry.backoff = sim::microseconds(200);
            ws.retry.budgetRatio = 0.1;
        }
        eng = std::make_unique<workload::WorkloadEngine>(
            w.dep, *w.root, ws, cfg.seed ^ 0x10adull);
    } else {
        workload::LoadSpec ls;
        ls.qps = cfg.qps;
        ls.connections = cfg.connections;
        ls.openLoop = true;
        ls.timeout = cfg.clientTimeout;
        ls.propagateDeadline = true;
        ls.cancelOnTimeout = true;
        lg = std::make_unique<workload::LoadGen>(
            w.dep, *w.root, ls, cfg.seed ^ 0x10adull);
    }

    fault::FaultInjector inj(w.dep);
    inj.install(plan);

    if (eng)
        eng->start();
    else
        lg->start();
    w.dep.runFor(cfg.runFor);
    if (eng)
        eng->stop();
    else
        lg->stop();
    inj.clearAll();
    w.dep.runFor(cfg.drain);

    const ClientCounts cc = eng ? countsOf(*eng) : countsOf(*lg);

    PlanRunResult result;
    checkInvariants(cfg, w, cc, result.violations);

    OutcomeMix &mix = result.mix;
    mix.clientSent = cc.sent;
    mix.clientOk = cc.ok;
    mix.clientError = cc.error;
    mix.clientShed = cc.shed;
    mix.clientTimedOut = cc.timedOut;
    mix.clientLate = cc.late;
    mix.cancelsSent = cc.cancels;
    for (const auto &svc : w.dep.services()) {
        const app::ServiceStats &s = svc->stats();
        mix.rpcOk += s.rpcOk;
        mix.rpcTimeouts += s.rpcTimeouts;
        mix.rpcBreakerFastFails += s.rpcBreakerFastFails;
        mix.rpcCancelled += s.rpcCancelled;
        mix.rpcHedges += s.rpcHedges;
        mix.rpcHedgeWins += s.rpcHedgeWins;
        mix.requestsShed += s.requestsShed;
        mix.requestsCancelled += s.requestsCancelled;
    }
    return result;
}

ShrinkResult
shrinkPlan(const ChaosConfig &cfg, const fault::FaultPlan &plan)
{
    ShrinkResult result;
    result.plan = plan;

    std::vector<std::string> lastViolations;
    const auto violates =
        [&](const std::vector<fault::FaultSpec> &faults) -> bool {
        fault::FaultPlan candidate;
        candidate.faults = faults;
        const PlanRunResult r = runPlan(cfg, candidate);
        ++result.probes;
        if (!r.ok())
            lastViolations = r.violations;
        return !r.ok();
    };

    // The plan must violate to begin with; record its violations.
    if (!violates(plan.faults)) {
        result.violations.clear();
        return result;
    }

    // Phase 1: ddmin over the fault list -- try dropping complement
    // chunks, doubling granularity when nothing can be dropped.
    std::vector<fault::FaultSpec> cur = plan.faults;
    std::size_t n = 2;
    while (cur.size() >= 2 && result.probes < cfg.maxShrinkProbes) {
        const std::size_t chunk = (cur.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t at = 0;
             at < cur.size() && result.probes < cfg.maxShrinkProbes;
             at += chunk) {
            std::vector<fault::FaultSpec> complement;
            complement.reserve(cur.size());
            for (std::size_t i = 0; i < cur.size(); ++i) {
                if (i < at || i >= at + chunk)
                    complement.push_back(cur[i]);
            }
            if (complement.empty())
                continue;
            if (violates(complement)) {
                cur = std::move(complement);
                n = n > 2 ? n - 1 : 2;
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= cur.size())
                break;
            n = std::min(cur.size(), n * 2);
        }
    }

    // Phase 2: narrow the surviving windows -- keep a half-duration
    // window (first or second half) whenever it still violates.
    for (std::size_t i = 0;
         i < cur.size() && result.probes < cfg.maxShrinkProbes; ++i) {
        for (unsigned round = 0;
             round < 6 && result.probes < cfg.maxShrinkProbes;
             ++round) {
            const fault::FaultSpec orig = cur[i];
            if (orig.duration < sim::microseconds(100))
                break;
            bool narrowed = false;
            for (int half = 0; half < 2 && !narrowed; ++half) {
                std::vector<fault::FaultSpec> candidate = cur;
                candidate[i].duration = orig.duration / 2;
                candidate[i].start = half == 0
                    ? orig.start
                    : orig.start + orig.duration / 2;
                if (result.probes >= cfg.maxShrinkProbes)
                    break;
                if (violates(candidate)) {
                    cur = std::move(candidate);
                    narrowed = true;
                }
            }
            if (!narrowed)
                break;
        }
    }

    result.plan.faults = cur;
    result.violations = lastViolations;
    return result;
}

std::string
formatFaultPlan(const fault::FaultPlan &plan)
{
    std::string out = "fault::FaultPlan plan;\n";
    for (const fault::FaultSpec &f : plan.faults) {
        switch (f.kind) {
          case fault::FaultKind::LinkDrop:
            out += format(
                "plan.linkDrop(\"%s\", \"%s\", %llu, %llu, %.17g);\n",
                f.a.c_str(), f.b.c_str(),
                (unsigned long long)f.start,
                (unsigned long long)f.duration, f.magnitude);
            break;
          case fault::FaultKind::LinkLatency:
            out += format(
                "plan.linkLatency(\"%s\", \"%s\", %llu, %llu, "
                "%llu);\n",
                f.a.c_str(), f.b.c_str(),
                (unsigned long long)f.start,
                (unsigned long long)f.duration,
                (unsigned long long)f.extraLatency);
            break;
          case fault::FaultKind::Partition:
            out += format(
                "plan.partition(\"%s\", \"%s\", %llu, %llu);\n",
                f.a.c_str(), f.b.c_str(),
                (unsigned long long)f.start,
                (unsigned long long)f.duration);
            break;
          case fault::FaultKind::MachineCrash:
            out += format("plan.machineCrash(\"%s\", %llu, %llu);\n",
                          f.a.c_str(), (unsigned long long)f.start,
                          (unsigned long long)f.duration);
            break;
          case fault::FaultKind::ServiceCrash:
            out += format("plan.serviceCrash(\"%s\", %llu, %llu);\n",
                          f.a.c_str(), (unsigned long long)f.start,
                          (unsigned long long)f.duration);
            break;
          case fault::FaultKind::DiskSlowdown:
            out += format(
                "plan.diskSlowdown(\"%s\", %llu, %llu, %.17g);\n",
                f.a.c_str(), (unsigned long long)f.start,
                (unsigned long long)f.duration, f.magnitude);
            break;
          case fault::FaultKind::RegionPartition:
            out += format(
                "plan.regionPartition(\"%s\", \"%s\", %llu, "
                "%llu);\n",
                f.a.c_str(), f.b.c_str(),
                (unsigned long long)f.start,
                (unsigned long long)f.duration);
            break;
          case fault::FaultKind::RegionOutage:
            out += format("plan.regionOutage(\"%s\", %llu, %llu);\n",
                          f.a.c_str(), (unsigned long long)f.start,
                          (unsigned long long)f.duration);
            break;
          case fault::FaultKind::WanDegrade:
            out += format(
                "plan.wanDegrade(\"%s\", \"%s\", %llu, %llu, %.17g, "
                "%llu);\n",
                f.a.c_str(), f.b.c_str(),
                (unsigned long long)f.start,
                (unsigned long long)f.duration, f.magnitude,
                (unsigned long long)f.extraLatency);
            break;
        }
    }
    return out;
}

unsigned
ChaosReport::violating() const
{
    unsigned count = 0;
    for (const PlanReport &p : plans)
        count += p.result.ok() ? 0 : 1;
    return count;
}

ChaosReport
runChaos(const ChaosConfig &cfg, unsigned planCount,
         sim::RunExecutor *executor)
{
    // Per-plan seeds derive from the master seed alone, so the
    // campaign is reproducible and each plan is independent.
    sim::Rng master(cfg.seed ^ 0xc4a0c4a0ull);
    std::vector<std::uint64_t> seeds(planCount);
    for (auto &s : seeds)
        s = master();

    const auto one = [&cfg](std::uint64_t seed) {
        PlanReport report;
        report.planSeed = seed;
        report.plan = generateRandomPlan(cfg, seed);
        report.result = runPlan(cfg, report.plan);
        return report;
    };

    ChaosReport report;
    if (executor != nullptr && executor->jobs() > 1) {
        std::vector<std::function<PlanReport()>> tasks;
        tasks.reserve(planCount);
        for (std::uint64_t seed : seeds)
            tasks.push_back([seed, one] { return one(seed); });
        report.plans =
            executor->runOrdered<PlanReport>(std::move(tasks));
    } else {
        report.plans.reserve(planCount);
        for (std::uint64_t seed : seeds)
            report.plans.push_back(one(seed));
    }
    return report;
}

} // namespace ditto::chaos
