/**
 * @file
 * Chaos fuzzing with fault-plan shrinking.
 *
 * The chaos runner drives seeded random FaultPlans against a seeded
 * topo_gen topology whose services have every request-lifecycle
 * mechanism armed (deadline propagation, cooperative cancellation,
 * hedging, retries, breakers, shedding), then checks *global
 * invariants* that must hold no matter what was injected:
 *
 *  - network message and byte ledgers balance exactly,
 *  - client-side request conservation (sent == ok+error+shed+timeout),
 *  - per-service RPC outcome conservation
 *    (started == ok + timeout + breaker-fast-fail + cancelled),
 *  - no orphan in-flight work after the drain window,
 *  - ServiceStats, syscall-probe, and tracer books reconcile.
 *
 * On a violation the offending plan is *shrunk* ddmin-style (drop
 * fault chunks, then bisect windows) to a minimal reproducer that
 * still violates, and formatted as ready-to-paste FaultPlan builder
 * code. Everything is a pure function of the config seed: the same
 * seed always produces the same plans, verdicts, and reproducer.
 *
 * The `plantLedgerBug` flag is a test fixture: it makes the network
 * message-ledger checker "forget" the dropped term, so any plan that
 * drops at least one message is flagged -- proving the fuzzer catches
 * (and minimally reproduces) a real accounting bug.
 *
 * With `regions > 0` the fuzzed world is multi-region: machines live
 * in regions "r0".."r<n-1>" over a seeded WAN mesh, the root balances
 * prefer-local, replicas of the replicated services spread across
 * regions with a RegionFailoverMonitor armed per group, and the
 * sampled fault kinds grow to include RegionPartition, RegionOutage,
 * and WanDegrade. Two invariant groups join the checks: per-WAN-link
 * message/byte ledgers and per-region RPC outcome conservation (no
 * call settled twice -- or lost -- across a failover reroute).
 * `plantWanLedgerBug` is the region-scoped fixture twin of
 * `plantLedgerBug`: the per-link ledger checker forgets its dropped
 * term, so any plan that drops a message on a WAN link is flagged and
 * shrunk to the region fault window that caused it.
 */

#ifndef DITTO_CHAOS_CHAOS_H_
#define DITTO_CHAOS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/run_executor.h"
#include "sim/time.h"

namespace ditto::chaos {

/** Everything a chaos campaign is a pure function of. */
struct ChaosConfig
{
    /** Master seed: plan seeds and verdicts derive from it alone. */
    std::uint64_t seed = 1;
    // ---- topology / load (constant across plans) --------------------
    unsigned services = 10;
    unsigned depth = 3;
    unsigned machines = 3;
    /**
     * Regions the machines spread over (0 = single-region world,
     * region mechanisms fully off). When > 0, region-scoped fault
     * kinds join the sampling space and the region invariant groups
     * are checked.
     */
    unsigned regions = 0;
    double qps = 5000;
    unsigned connections = 8;
    /**
     * Drive the world with the sessionized WorkloadEngine (MMPP
     * session arrivals, think times, per-session connection
     * affinity) instead of the plain open-loop LoadGen. The same
     * client-side conservation invariant is checked against the
     * engine's counters -- faults must not lose or double-settle a
     * call no matter which client model offered it.
     */
    bool sessions = false;
    /**
     * Arm adaptive overload control on every service: AIMD
     * concurrency limits, sojourn/deadline shedding, brownout on
     * optional RPC edges, and retry budgets (client-side too when
     * `sessions` is set). Adds the overload shed/skip causes to the
     * outcome mix the invariants must conserve; the fault-kind
     * sampling space is unchanged, so seed-for-seed plan sequences
     * are byte-identical with the flag off.
     */
    bool overload = false;
    /** Client deadline; cancellation chases fire on its expiry. */
    sim::Time clientTimeout = sim::milliseconds(3);
    /** Load window (faults are sampled inside it). */
    sim::Time runFor = sim::milliseconds(25);
    /** Quiet tail for in-flight work to settle before checking. */
    sim::Time drain = sim::milliseconds(25);
    /**
     * Generate the world with production characteristics (multiple
     * entry queries per service, shared stateful backends,
     * heavy-tailed fan-out, diamond dependencies) instead of the
     * plain layered tree. Widens the shape space the invariant
     * checkers run against.
     */
    bool prodShapes = false;
    // ---- fault sampling ---------------------------------------------
    unsigned minFaults = 1;
    unsigned maxFaults = 5;
    // ---- fixtures / limits ------------------------------------------
    /** Test fixture: break the message-ledger checker (see @file). */
    bool plantLedgerBug = false;
    /** Test fixture: break the per-WAN-link ledger checker. */
    bool plantWanLedgerBug = false;
    /** Cap on runPlan() probes one shrink may spend. */
    unsigned maxShrinkProbes = 120;
};

/** Aggregate outcome mix of one plan run (for reporting). */
struct OutcomeMix
{
    std::uint64_t clientSent = 0;
    std::uint64_t clientOk = 0;
    std::uint64_t clientError = 0;
    std::uint64_t clientShed = 0;
    std::uint64_t clientTimedOut = 0;
    std::uint64_t clientLate = 0;
    std::uint64_t cancelsSent = 0;
    std::uint64_t rpcOk = 0;
    std::uint64_t rpcTimeouts = 0;
    std::uint64_t rpcBreakerFastFails = 0;
    std::uint64_t rpcCancelled = 0;
    std::uint64_t rpcHedges = 0;
    std::uint64_t rpcHedgeWins = 0;
    std::uint64_t requestsShed = 0;
    std::uint64_t requestsCancelled = 0;

    OutcomeMix &operator+=(const OutcomeMix &o);
};

/** Verdict of one plan run. */
struct PlanRunResult
{
    /** Human-readable invariant violations; empty means clean. */
    std::vector<std::string> violations;
    OutcomeMix mix;

    bool ok() const { return violations.empty(); }
};

/** Sample a random fault plan; pure function of (cfg, planSeed). */
fault::FaultPlan generateRandomPlan(const ChaosConfig &cfg,
                                    std::uint64_t planSeed);

/**
 * Build the deployment, install `plan`, run load + drain, and check
 * every invariant. Fully self-contained and deterministic.
 */
PlanRunResult runPlan(const ChaosConfig &cfg,
                      const fault::FaultPlan &plan);

/** Result of shrinking one violating plan. */
struct ShrinkResult
{
    /** Minimal plan that still violates. */
    fault::FaultPlan plan;
    /** Violations of the shrunk plan. */
    std::vector<std::string> violations;
    /** runPlan() probes spent. */
    unsigned probes = 0;
};

/**
 * ddmin-style minimization: repeatedly drop complement chunks of the
 * fault list, then bisect the surviving windows, keeping every
 * candidate that still violates. Bounded by cfg.maxShrinkProbes.
 * `plan` must violate under `cfg` (callers obtain it from a failing
 * runPlan).
 */
ShrinkResult shrinkPlan(const ChaosConfig &cfg,
                        const fault::FaultPlan &plan);

/** Ready-to-paste FaultPlan builder code reproducing `plan`. */
std::string formatFaultPlan(const fault::FaultPlan &plan);

/** One campaign entry: the plan, its seed, and its verdict. */
struct PlanReport
{
    std::uint64_t planSeed = 0;
    fault::FaultPlan plan;
    PlanRunResult result;
};

/** Campaign outcome: per-plan reports in plan order. */
struct ChaosReport
{
    std::vector<PlanReport> plans;

    unsigned violating() const;
};

/**
 * Run `planCount` seeded plans. With an executor, plans run in
 * parallel but reports come back in plan order, so output built from
 * them is byte-identical at any job count.
 */
ChaosReport runChaos(const ChaosConfig &cfg, unsigned planCount,
                     sim::RunExecutor *executor = nullptr);

} // namespace ditto::chaos

#endif // DITTO_CHAOS_CHAOS_H_
