#include "obs/jaeger.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/json.h"

namespace ditto::obs {

namespace {

// ---- small formatting helpers ---------------------------------------

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHexId(const std::string &s)
{
    // Accept up to 32 hex chars: Jaeger emits 128-bit trace ids, and
    // the low 64 bits are unique enough to key a trace group.
    if (s.empty() || s.size() > 32)
        throw std::runtime_error("jaeger: bad hex id \"" + s + "\"");
    const std::size_t low = s.size() > 16 ? s.size() - 16 : 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        unsigned d = 0;
        if (c >= '0' && c <= '9')
            d = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            d = static_cast<unsigned>(c - 'A' + 10);
        else
            throw std::runtime_error("jaeger: bad hex id \"" + s +
                                     "\"");
        if (i >= low)
            v = (v << 4) | d;
    }
    return v;
}

std::uint64_t
parseDec(const std::string &s)
{
    if (s.empty())
        throw std::runtime_error("jaeger: empty decimal tag");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE)
        throw std::runtime_error("jaeger: decimal tag \"" + s +
                                 "\" overflows uint64");
    if (end != s.c_str() + s.size())
        throw std::runtime_error("jaeger: bad decimal tag \"" + s +
                                 "\"");
    return v;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

void
appendStringTag(std::string &out, const char *key,
                const std::string &value, bool first)
{
    if (!first)
        out += ",";
    out += "{\"key\":";
    appendJsonString(out, key);
    out += ",\"type\":\"string\",\"value\":";
    appendJsonString(out, value);
    out += "}";
}

void
appendIntTag(std::string &out, const char *key, std::uint64_t value,
             bool first)
{
    if (!first)
        out += ",";
    out += "{\"key\":";
    appendJsonString(out, key);
    out += ",\"type\":\"int64\",\"value\":";
    appendU64(out, value);
    out += "}";
}

void
appendReferences(std::string &out, std::uint64_t traceId,
                 std::uint64_t parentSpanId)
{
    out += "\"references\":[";
    if (parentSpanId != 0) {
        out += "{\"refType\":\"CHILD_OF\",\"traceID\":";
        appendJsonString(out, hex16(traceId));
        out += ",\"spanID\":";
        appendJsonString(out, hex16(parentSpanId));
        out += "}";
    }
    out += "]";
}

/** One outcome log entry ({"timestamp":..,"fields":[..]}). */
void
appendOutcomeLog(std::string &out, const trace::OutcomeEvent &ev,
                 std::size_t seq, bool first)
{
    if (!first)
        out += ",";
    out += "{\"timestamp\":";
    appendU64(out, ev.time / 1000);
    out += ",\"fields\":[";
    appendStringTag(out, "event", trace::outcomeKindName(ev.kind),
                    true);
    appendIntTag(out, "ditto.seq", seq, false);
    appendIntTag(out, "ditto.target", ev.target, false);
    appendIntTag(out, "ditto.endpoint", ev.endpoint, false);
    appendIntTag(out, "ditto.attempts", ev.attempts, false);
    appendStringTag(out, "ditto.time_ns", std::to_string(ev.time),
                    false);
    if (!ev.cause.empty())
        appendStringTag(out, "ditto.cause", ev.cause, false);
    out += "]}";
}

struct TraceGroup
{
    std::vector<std::size_t> spans;     //!< indices into tracer.spans()
    std::vector<std::size_t> edges;
    std::vector<std::size_t> outcomes;
};

} // namespace

std::string
exportJaegerJson(const trace::Tracer &tracer)
{
    const auto &spans = tracer.spans();
    const auto &edges = tracer.edges();
    const auto &outcomes = tracer.outcomes();

    std::map<std::uint64_t, TraceGroup> groups;
    for (std::size_t i = 0; i < spans.size(); ++i)
        groups[spans[i].traceId].spans.push_back(i);
    for (std::size_t i = 0; i < edges.size(); ++i)
        groups[edges[i].traceId].edges.push_back(i);
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        groups[outcomes[i].traceId].outcomes.push_back(i);

    // Synthetic span ids (edge spans, outcome carriers) live in the
    // top half of the id space; Tracer ids count up from 1 and never
    // reach it in practice.
    std::uint64_t syntheticId = 0x8000000000000000ull;

    std::string out;
    out.reserve(4096 + 256 * (spans.size() + edges.size()));
    out += "{\"data\":[";
    bool firstTrace = true;
    for (const auto &[traceId, group] : groups) {
        if (!firstTrace)
            out += ",";
        firstTrace = false;

        // Process table: one entry per service seen in this trace,
        // in sorted order.
        std::set<std::string> services;
        for (std::size_t i : group.spans)
            services.insert(spans[i].service);
        for (std::size_t i : group.edges)
            services.insert(edges[i].caller);
        for (std::size_t i : group.outcomes)
            services.insert(outcomes[i].service);
        std::map<std::string, std::string> pid;
        for (const auto &svc : services)
            pid[svc] = "p" + std::to_string(pid.size() + 1);

        // Each outcome becomes a log on the first sampled server span
        // of its service; leftovers go on a synthetic carrier span.
        std::map<std::string, std::size_t> firstSpanOfService;
        for (std::size_t i : group.spans)
            firstSpanOfService.emplace(spans[i].service, i);
        std::map<std::size_t, std::vector<std::size_t>> logsOnSpan;
        std::map<std::string, std::vector<std::size_t>> orphanLogs;
        for (std::size_t i : group.outcomes) {
            const auto it =
                firstSpanOfService.find(outcomes[i].service);
            if (it != firstSpanOfService.end())
                logsOnSpan[it->second].push_back(i);
            else
                orphanLogs[outcomes[i].service].push_back(i);
        }

        out += "{\"traceID\":";
        appendJsonString(out, hex16(traceId));
        out += ",\"spans\":[";
        bool firstSpan = true;

        for (std::size_t i : group.spans) {
            const trace::Span &s = spans[i];
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(s.traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(s.spanId));
            out += ",\"operationName\":";
            appendJsonString(out,
                             "ep" + std::to_string(s.endpoint));
            out += ",";
            appendReferences(out, s.traceId, s.parentSpanId);
            out += ",\"startTime\":";
            appendU64(out, s.start / 1000);
            out += ",\"duration\":";
            appendU64(out, (s.end - s.start) / 1000);
            out += ",\"processID\":";
            appendJsonString(out, pid[s.service]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "server", true);
            appendIntTag(out, "ditto.endpoint", s.endpoint, false);
            appendIntTag(out, "ditto.seq", i, false);
            appendStringTag(out, "ditto.start_ns",
                            std::to_string(s.start), false);
            appendStringTag(out, "ditto.end_ns",
                            std::to_string(s.end), false);
            out += "],\"logs\":[";
            bool firstLog = true;
            const auto lit = logsOnSpan.find(i);
            if (lit != logsOnSpan.end()) {
                for (std::size_t oi : lit->second) {
                    appendOutcomeLog(out, outcomes[oi], oi,
                                     firstLog);
                    firstLog = false;
                }
            }
            out += "]}";
        }

        for (std::size_t i : group.edges) {
            const trace::RpcEdge &e = edges[i];
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(e.traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(syntheticId++));
            out += ",\"operationName\":";
            appendJsonString(out,
                             "rpc:ep" + std::to_string(e.endpoint));
            out += ",";
            appendReferences(out, e.traceId, e.parentSpanId);
            out += ",\"startTime\":0,\"duration\":0,\"processID\":";
            appendJsonString(out, pid[e.caller]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "client", true);
            appendStringTag(out, "peer.service", e.callee, false);
            appendIntTag(out, "ditto.endpoint", e.endpoint, false);
            appendIntTag(out, "ditto.seq", i, false);
            appendIntTag(out, "ditto.request_bytes", e.requestBytes,
                         false);
            appendIntTag(out, "ditto.response_bytes",
                         e.responseBytes, false);
            if (e.deadlineNs != 0)
                appendStringTag(out, "ditto.deadline_ns",
                                std::to_string(e.deadlineNs), false);
            out += "],\"logs\":[]}";
        }

        for (const auto &[svc, logIdx] : orphanLogs) {
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(syntheticId++));
            out += ",\"operationName\":\"outcome\",";
            appendReferences(out, traceId, 0);
            out += ",\"startTime\":0,\"duration\":0,\"processID\":";
            appendJsonString(out, pid[svc]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "internal", true);
            out += "],\"logs\":[";
            bool firstLog = true;
            for (std::size_t oi : logIdx) {
                appendOutcomeLog(out, outcomes[oi], oi, firstLog);
                firstLog = false;
            }
            out += "]}";
        }

        out += "],\"processes\":{";
        bool firstProc = true;
        for (const auto &[svc, p] : pid) {
            if (!firstProc)
                out += ",";
            firstProc = false;
            appendJsonString(out, p);
            out += ":{\"serviceName\":";
            appendJsonString(out, svc);
            out += "}";
        }
        out += "}}";
    }
    out += "],\"dittoMeta\":{\"sampleRate\":";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", tracer.sampleRate());
    out += buf;
    out += "}}";
    return out;
}

void
writeJaegerJsonFile(const trace::Tracer &tracer,
                    const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("jaeger: cannot open " + path +
                                 " for writing");
    const std::string doc = exportJaegerJson(tracer);
    os.write(doc.data(),
             static_cast<std::streamsize>(doc.size()));
    if (!os)
        throw std::runtime_error("jaeger: short write to " + path);
}

namespace {

const JsonValue *
findTag(const JsonValue &span, const char *arrayKey,
        const std::string &key)
{
    const JsonValue *tags = span.find(arrayKey);
    if (!tags || !tags->isArray())
        return nullptr;
    for (const JsonValue &tag : tags->items) {
        const JsonValue *k = tag.find("key");
        if (k && k->asString() == key)
            return tag.find("value");
    }
    return nullptr;
}

std::uint64_t
tagU64(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? v->asU64() : 0;
}

/** Decimal-string tag holding a lossless u64 (e.g. ditto.start_ns). */
std::uint64_t
tagU64Str(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? parseDec(v->asString()) : 0;
}

std::string
tagString(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? v->asString() : std::string{};
}

std::uint64_t
parentFromReferences(const JsonValue &span)
{
    const JsonValue *refs = span.find("references");
    if (!refs || !refs->isArray() || refs->items.empty())
        return 0;
    const JsonValue *sid = refs->items.front().find("spanID");
    return sid ? parseHexId(sid->asString()) : 0;
}

/**
 * Convert a microsecond JSON number to nanoseconds. Real Jaeger
 * exporters emit float microseconds ("123.456"); multiplying the
 * rounded double by 1000 loses the low digits, so convert from the
 * raw source literal instead: lossless whenever the value has at
 * most 3 fractional digits and no exponent. Returns false on
 * overflow; *negative is set when the literal is negative (the
 * magnitude is still converted).
 */
bool
microsValueToNanos(const JsonValue &v, std::uint64_t *ns,
                   bool *negative)
{
    *negative = false;
    if (v.kind == JsonValue::Kind::Unsigned) {
        if (v.unsignedValue > UINT64_MAX / 1000)
            return false;
        *ns = v.unsignedValue * 1000;
        return true;
    }
    const std::string &tok = v.str;
    if (v.kind != JsonValue::Kind::Double || tok.empty() ||
        tok.find_first_of("eE") != std::string::npos) {
        // Exponent form (or a programmatic value with no literal):
        // fall back to rounded double math.
        double d = v.asDouble();
        if (d < 0) {
            *negative = true;
            d = -d;
        }
        if (d * 1000.0 > static_cast<double>(UINT64_MAX))
            return false;
        *ns = static_cast<std::uint64_t>(std::llround(d * 1000.0));
        return true;
    }
    std::size_t i = 0;
    if (tok[i] == '-') {
        *negative = true;
        ++i;
    }
    std::uint64_t whole = 0;
    for (; i < tok.size() && tok[i] != '.'; ++i) {
        const auto d = static_cast<std::uint64_t>(tok[i] - '0');
        if (whole > (UINT64_MAX - d) / 10)
            return false;
        whole = whole * 10 + d;
    }
    std::uint64_t frac = 0;   // fractional part scaled to ns (3 digits)
    std::uint64_t scale = 100;
    bool roundUp = false;
    if (i < tok.size() && tok[i] == '.') {
        for (++i; i < tok.size(); ++i) {
            const auto d = static_cast<std::uint64_t>(tok[i] - '0');
            if (scale > 0) {
                frac += d * scale;
                scale /= 10;
            } else if (!roundUp) {
                roundUp = d >= 5;  // round half up on the 4th digit
            }
        }
    }
    if (whole > (UINT64_MAX - frac - 1) / 1000)
        return false;
    *ns = whole * 1000 + frac + (roundUp ? 1 : 0);
    return true;
}

/** Tallies defects; throws named errors unless lenient. */
class Ingest
{
  public:
    Ingest(const ImportOptions &opts, ImportReport &rep)
        : opts_(opts), rep_(rep)
    {
    }

    /** A repairable defect: error in strict mode, tally in lenient. */
    void
    defect(std::uint64_t &counter, const std::string &msg)
    {
        ++counter;
        if (!opts_.lenient)
            throw std::runtime_error(
                "jaeger: " + msg +
                " (re-run with lenient import to repair and count)");
        note(msg);
    }

    /** A non-fatal observation, retained up to maxWarnings. */
    void
    note(const std::string &msg)
    {
        if (rep_.warnings.size() < opts_.maxWarnings)
            rep_.warnings.push_back(msg);
    }

  private:
    const ImportOptions &opts_;
    ImportReport &rep_;
};

/** A foreign span after the first (field-extraction) pass. */
struct RawSpan
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;  //!< raw CHILD_OF reference
    std::string service;
    std::string operation;
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    std::uint64_t requestBytes = 0;
    std::uint64_t responseBytes = 0;
    std::string peer;       //!< peer.service (client spans)
    int kind = 0;           //!< 0 server, 1 client, 2 other
    bool skip = false;      //!< lenient-repaired away
};

/**
 * Import one foreign trace entry: extract spans, validate structure,
 * intern endpoints, and emit Tracer spans plus RPC edges (from client
 * spans where present, else derived from server-span parentage).
 */
void
importForeignTrace(const JsonValue &tr,
                   const std::map<std::string, std::string> &pidToService,
                   Ingest &ing, ImportReport &rep,
                   std::map<std::string, std::vector<std::string>>
                       &endpointIdsByService,
                   std::vector<trace::Span> &outSpans,
                   std::vector<trace::RpcEdge> &outEdges)
{
    const JsonValue *spanArr = tr.find("spans");
    if (!spanArr || !spanArr->isArray())
        throw std::runtime_error("jaeger: trace without spans");

    // ---- pass 1: extract fields, catch duplicates ------------------
    std::vector<RawSpan> raw;
    raw.reserve(spanArr->items.size());
    std::unordered_map<std::uint64_t, std::size_t> byId;
    for (const JsonValue &sp : spanArr->items) {
        const JsonValue *tid = sp.find("traceID");
        const JsonValue *sid = sp.find("spanID");
        const JsonValue *pidv = sp.find("processID");
        if (!tid || !sid || !pidv)
            throw std::runtime_error(
                "jaeger: span missing traceID/spanID/processID");
        RawSpan r;
        r.traceId = parseHexId(tid->asString());
        r.spanId = parseHexId(sid->asString());
        r.parentId = parentFromReferences(sp);
        const auto pit = pidToService.find(pidv->asString());
        if (pit == pidToService.end()) {
            ing.defect(rep.unknownProcessSpans,
                       "span " + hex16(r.spanId) +
                           " references unknown processID \"" +
                           pidv->asString() + "\"");
            continue;  // lenient: skip the span entirely
        }
        r.service = pit->second;
        if (const JsonValue *op = sp.find("operationName"))
            r.operation = op->asString();
        const std::string kind = tagString(sp, "span.kind");
        if (kind == "client")
            r.kind = 1;
        else if (kind.empty() || kind == "server")
            r.kind = 0;
        else {
            // internal/producer/consumer: out of scope for topology
            // recovery, but counted so nothing vanishes silently.
            r.kind = 2;
            ++rep.internalSpans;
        }

        // Timestamps: native ns tags when present, else float-us.
        bool negStart = false, negDur = false;
        std::uint64_t durNs = 0;
        if (findTag(sp, "tags", "ditto.start_ns")) {
            r.startNs = tagU64Str(sp, "ditto.start_ns");
            r.endNs = tagU64Str(sp, "ditto.end_ns");
            durNs = r.endNs >= r.startNs ? r.endNs - r.startNs : 0;
        } else {
            const JsonValue *st = sp.find("startTime");
            const JsonValue *du = sp.find("duration");
            if (st && !microsValueToNanos(*st, &r.startNs, &negStart))
                throw std::runtime_error(
                    "jaeger: startTime overflows on span " +
                    hex16(r.spanId));
            if (du && !microsValueToNanos(*du, &durNs, &negDur))
                throw std::runtime_error(
                    "jaeger: duration overflows on span " +
                    hex16(r.spanId));
            if (negStart) {
                ing.defect(rep.negativeDurationSpans,
                           "span " + hex16(r.spanId) +
                               " has negative startTime");
                r.startNs = 0;  // lenient: clamp to epoch
            }
            if (negDur) {
                ing.defect(rep.negativeDurationSpans,
                           "span " + hex16(r.spanId) + " (service \"" +
                               r.service + "\", operation \"" +
                               r.operation +
                               "\") has negative duration");
                durNs = 0;  // lenient: clamp
            }
            r.endNs = r.startNs + durNs;
        }
        if (r.kind == 0 && durNs == 0)
            // Zero-duration server spans poison service-time fitting.
            ing.defect(rep.zeroDurationSpans,
                       "zero-duration span " + hex16(r.spanId) +
                           " (service \"" + r.service +
                           "\", operation \"" + r.operation + "\")");

        if (r.kind == 1) {
            r.peer = tagString(sp, "peer.service");
            r.requestBytes = tagU64(sp, "ditto.request_bytes");
            if (r.requestBytes == 0)
                r.requestBytes =
                    tagU64(sp, "http.request_content_length");
            r.responseBytes = tagU64(sp, "ditto.response_bytes");
            if (r.responseBytes == 0)
                r.responseBytes =
                    tagU64(sp, "http.response_content_length");
        }

        const auto [it, inserted] =
            byId.emplace(r.spanId, raw.size());
        if (!inserted) {
            ing.defect(rep.duplicateSpans,
                       "duplicate spanID " + hex16(r.spanId) +
                           " in trace " + hex16(r.traceId));
            r.skip = true;  // lenient: keep the first occurrence
        }
        raw.push_back(std::move(r));
    }

    // ---- pass 2a: intern server endpoints, emit spans --------------
    // Walks a span's ancestry to the nearest *server* span, hopping
    // over the client span real exporters interpose between caller
    // and callee. Returns 0 (root) for missing parents in lenient
    // mode. kindOfFirstHop reports what the raw parent was.
    const auto resolveServerParent =
        [&](const RawSpan &r, int *kindOfFirstHop) -> std::uint64_t {
        *kindOfFirstHop = -1;  // none
        std::uint64_t p = r.parentId;
        int hops = 0;
        while (p != 0) {
            const auto it = byId.find(p);
            if (it == byId.end()) {
                ing.defect(rep.missingParents,
                           "span " + hex16(r.spanId) + " in trace " +
                               hex16(r.traceId) +
                               " references missing parent " +
                               hex16(p));
                return 0;  // lenient: reparent to root
            }
            const RawSpan &ps = raw[it->second];
            if (*kindOfFirstHop < 0)
                *kindOfFirstHop = ps.kind;
            if (ps.kind == 0)
                return ps.spanId;
            if (++hops > 64)
                throw std::runtime_error(
                    "jaeger: parent chain of span " +
                    hex16(r.spanId) + " in trace " +
                    hex16(r.traceId) + " is cyclic");
            p = ps.parentId;
        }
        return 0;
    };

    struct SeqEdge
    {
        std::size_t seq;  //!< document order
        trace::RpcEdge edge;
    };
    std::vector<SeqEdge> seqEdges;
    std::vector<std::uint32_t> endpointOf(raw.size(), 0);
    // First server child of each client span, for callee resolution.
    std::unordered_map<std::size_t, std::size_t> serverChildOfClient;

    for (std::size_t i = 0; i < raw.size(); ++i) {
        RawSpan &r = raw[i];
        if (r.skip || r.kind != 0)
            continue;
        auto &names = endpointIdsByService[r.service];
        std::uint32_t ep = 0;
        const std::string &opName =
            r.operation.empty() ? std::string("unnamed") : r.operation;
        const auto found =
            std::find(names.begin(), names.end(), opName);
        if (found != names.end()) {
            ep = static_cast<std::uint32_t>(found - names.begin());
        } else {
            ep = static_cast<std::uint32_t>(names.size());
            names.push_back(opName);
        }
        endpointOf[i] = ep;

        int firstHop = -1;
        const std::uint64_t parent = resolveServerParent(r, &firstHop);
        if (firstHop == 1) {
            const auto cit = byId.find(r.parentId);
            if (cit != byId.end())
                serverChildOfClient.emplace(cit->second, i);
        }
        trace::Span s;
        s.traceId = r.traceId;
        s.spanId = r.spanId;
        s.parentSpanId = parent;
        s.service = r.service;
        s.endpoint = ep;
        s.start = r.startNs;
        s.end = r.endNs;
        outSpans.push_back(std::move(s));
        ++rep.foreignSpans;

        // No client span between this span and its server parent:
        // the call edge exists only implicitly, so derive it (byte
        // sizes unknown -> 0, clone synthesis falls back to defaults).
        if (firstHop == 0 && parent != 0) {
            trace::RpcEdge e;
            e.traceId = r.traceId;
            e.parentSpanId = parent;
            e.caller = raw[byId[r.parentId]].service;
            e.callee = r.service;
            e.endpoint = ep;
            seqEdges.push_back({i, std::move(e)});
            ++rep.derivedEdges;
        }
    }

    // ---- pass 2b: client spans become RPC edges --------------------
    for (std::size_t i = 0; i < raw.size(); ++i) {
        RawSpan &r = raw[i];
        if (r.skip || r.kind != 1)
            continue;
        ++rep.clientSpans;
        trace::RpcEdge e;
        e.traceId = r.traceId;
        e.caller = r.service;
        const auto child = serverChildOfClient.find(i);
        if (child != serverChildOfClient.end()) {
            e.callee = raw[child->second].service;
            e.endpoint = endpointOf[child->second];
        } else if (!r.peer.empty()) {
            e.callee = r.peer;
            e.endpoint = 0;
            ing.note("client span " + hex16(r.spanId) +
                     " has no callee server span; trusting "
                     "peer.service \"" +
                     r.peer + "\"");
        } else {
            ing.defect(rep.calleelessClientSpans,
                       "client span " + hex16(r.spanId) +
                           " in trace " + hex16(r.traceId) +
                           " has neither a child server span nor "
                           "peer.service");
            continue;  // lenient: drop the edge
        }
        int firstHop = -1;
        e.parentSpanId = resolveServerParent(r, &firstHop);
        e.requestBytes = static_cast<std::uint32_t>(r.requestBytes);
        e.responseBytes = static_cast<std::uint32_t>(r.responseBytes);
        seqEdges.push_back({i, std::move(e)});
    }

    std::stable_sort(seqEdges.begin(), seqEdges.end(),
                     [](const SeqEdge &a, const SeqEdge &b) {
                         return a.seq < b.seq;
                     });
    for (auto &se : seqEdges)
        outEdges.push_back(std::move(se.edge));
}

/** Native (dittoMeta-marked) import: exact inverse of the exporter. */
void
importNativeSpan(const JsonValue &sp, std::uint64_t traceId,
                 const std::string &service,
                 std::vector<std::pair<std::uint64_t, trace::Span>>
                     &spans,
                 std::vector<std::pair<std::uint64_t, trace::RpcEdge>>
                     &edges)
{
    const std::string kind = tagString(sp, "span.kind");
    if (kind == "server") {
        trace::Span s;
        s.traceId = traceId;
        const JsonValue *sid = sp.find("spanID");
        s.spanId = sid ? parseHexId(sid->asString()) : 0;
        s.parentSpanId = parentFromReferences(sp);
        s.service = service;
        s.endpoint = static_cast<std::uint32_t>(
            tagU64(sp, "ditto.endpoint"));
        s.start = tagU64Str(sp, "ditto.start_ns");
        s.end = tagU64Str(sp, "ditto.end_ns");
        spans.push_back({tagU64(sp, "ditto.seq"), s});
    } else if (kind == "client") {
        trace::RpcEdge e;
        e.traceId = traceId;
        e.parentSpanId = parentFromReferences(sp);
        e.caller = service;
        e.callee = tagString(sp, "peer.service");
        e.endpoint = static_cast<std::uint32_t>(
            tagU64(sp, "ditto.endpoint"));
        e.requestBytes = static_cast<std::uint32_t>(
            tagU64(sp, "ditto.request_bytes"));
        e.responseBytes = static_cast<std::uint32_t>(
            tagU64(sp, "ditto.response_bytes"));
        e.deadlineNs = tagU64Str(sp, "ditto.deadline_ns");
        edges.push_back({tagU64(sp, "ditto.seq"), e});
    }
}

/** Outcome logs may ride on any span kind (native docs). */
void
collectOutcomeLogs(
    const JsonValue &sp, std::uint64_t traceId,
    const std::string &service,
    std::vector<std::pair<std::uint64_t, trace::OutcomeEvent>>
        &outcomes)
{
    const JsonValue *logs = sp.find("logs");
    if (!logs || !logs->isArray())
        return;
    for (const JsonValue &log : logs->items) {
        const JsonValue *name = findTag(log, "fields", "event");
        trace::OutcomeKind kindVal;
        if (!name ||
            !trace::outcomeKindFromName(name->asString(), kindVal))
            continue;
        trace::OutcomeEvent ev;
        ev.traceId = traceId;
        ev.service = service;
        ev.kind = kindVal;
        const JsonValue *v = findTag(log, "fields", "ditto.target");
        ev.target = static_cast<std::uint32_t>(v ? v->asU64() : 0);
        v = findTag(log, "fields", "ditto.endpoint");
        ev.endpoint = static_cast<std::uint32_t>(v ? v->asU64() : 0);
        v = findTag(log, "fields", "ditto.attempts");
        ev.attempts = static_cast<unsigned>(v ? v->asU64() : 0);
        v = findTag(log, "fields", "ditto.time_ns");
        ev.time = v ? parseDec(v->asString()) : 0;
        v = findTag(log, "fields", "ditto.cause");
        ev.cause = v ? v->asString() : std::string{};
        v = findTag(log, "fields", "ditto.seq");
        outcomes.push_back({v ? v->asU64() : 0, ev});
    }
}

} // namespace

trace::Tracer
importJaegerJson(const std::string &text, const ImportOptions &opts,
                 ImportReport *report)
{
    ImportReport localRep;
    ImportReport &rep = report ? *report : localRep;
    rep = ImportReport{};
    Ingest ing(opts, rep);

    const JsonValue root = parseJson(text);
    // Our own exports always carry dittoMeta; its absence marks a
    // foreign document and routes it to the tolerant pipeline.
    const JsonValue *meta = root.find("dittoMeta");
    const bool native = meta != nullptr;
    double sampleRate = 1.0;
    if (native) {
        if (const JsonValue *r = meta->find("sampleRate"))
            sampleRate = r->asDouble();
    }
    const JsonValue *data = root.find("data");
    if (!data || !data->isArray())
        throw std::runtime_error("jaeger: missing data array");

    std::vector<std::pair<std::uint64_t, trace::Span>> spans;
    std::vector<std::pair<std::uint64_t, trace::RpcEdge>> edges;
    std::vector<std::pair<std::uint64_t, trace::OutcomeEvent>>
        outcomes;
    std::vector<trace::Span> foreignSpans;
    std::vector<trace::RpcEdge> foreignEdges;

    for (const JsonValue &tr : data->items) {
        ++rep.traces;
        const JsonValue *procs = tr.find("processes");
        std::map<std::string, std::string> pidToService;
        if (procs && procs->isObject()) {
            for (const auto &[p, v] : procs->members) {
                const JsonValue *n = v.find("serviceName");
                pidToService[p] = n ? n->asString() : std::string{};
            }
        }
        if (!native) {
            importForeignTrace(tr, pidToService, ing, rep,
                               rep.endpointNames, foreignSpans,
                               foreignEdges);
            continue;
        }
        const JsonValue *spanArr = tr.find("spans");
        if (!spanArr || !spanArr->isArray())
            throw std::runtime_error("jaeger: trace without spans");
        for (const JsonValue &sp : spanArr->items) {
            const JsonValue *tid = sp.find("traceID");
            const JsonValue *pidv = sp.find("processID");
            if (!tid || !pidv)
                throw std::runtime_error(
                    "jaeger: span missing traceID/processID");
            const std::uint64_t traceId =
                parseHexId(tid->asString());
            const auto pit = pidToService.find(pidv->asString());
            if (pit == pidToService.end()) {
                ing.defect(rep.unknownProcessSpans,
                           "span in trace " + hex16(traceId) +
                               " references unknown processID \"" +
                               pidv->asString() + "\"");
                continue;  // lenient: skip the span
            }
            importNativeSpan(sp, traceId, pit->second, spans, edges);
            collectOutcomeLogs(sp, traceId, pit->second, outcomes);
        }
    }

    // stable_sort: foreign records share seq ties; document order is
    // then authoritative (native seqs are unique, so it is identical
    // to the previous sort there).
    const auto bySeq = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::stable_sort(spans.begin(), spans.end(), bySeq);
    std::stable_sort(edges.begin(), edges.end(), bySeq);
    std::stable_sort(outcomes.begin(), outcomes.end(), bySeq);

    trace::Tracer tracer(sampleRate);
    for (auto &s : spans) {
        tracer.importSpan(std::move(s.second));
        ++rep.nativeSpans;
    }
    for (auto &e : edges)
        tracer.importEdge(std::move(e.second));
    for (auto &o : outcomes)
        tracer.importOutcome(std::move(o.second));
    for (auto &s : foreignSpans)
        tracer.importSpan(std::move(s));
    for (auto &e : foreignEdges)
        tracer.importEdge(std::move(e));
    return tracer;
}

trace::Tracer
importJaegerJson(const std::string &text)
{
    return importJaegerJson(text, ImportOptions{}, nullptr);
}

trace::Tracer
readJaegerJsonFile(const std::string &path, const ImportOptions &opts,
                   ImportReport *report)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("jaeger: cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return importJaegerJson(ss.str(), opts, report);
}

trace::Tracer
readJaegerJsonFile(const std::string &path)
{
    return readJaegerJsonFile(path, ImportOptions{}, nullptr);
}

} // namespace ditto::obs
