#include "obs/jaeger.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json.h"

namespace ditto::obs {

namespace {

// ---- small formatting helpers ---------------------------------------

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHex(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 16);
}

std::uint64_t
parseDec(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

void
appendStringTag(std::string &out, const char *key,
                const std::string &value, bool first)
{
    if (!first)
        out += ",";
    out += "{\"key\":";
    appendJsonString(out, key);
    out += ",\"type\":\"string\",\"value\":";
    appendJsonString(out, value);
    out += "}";
}

void
appendIntTag(std::string &out, const char *key, std::uint64_t value,
             bool first)
{
    if (!first)
        out += ",";
    out += "{\"key\":";
    appendJsonString(out, key);
    out += ",\"type\":\"int64\",\"value\":";
    appendU64(out, value);
    out += "}";
}

void
appendReferences(std::string &out, std::uint64_t traceId,
                 std::uint64_t parentSpanId)
{
    out += "\"references\":[";
    if (parentSpanId != 0) {
        out += "{\"refType\":\"CHILD_OF\",\"traceID\":";
        appendJsonString(out, hex16(traceId));
        out += ",\"spanID\":";
        appendJsonString(out, hex16(parentSpanId));
        out += "}";
    }
    out += "]";
}

/** One outcome log entry ({"timestamp":..,"fields":[..]}). */
void
appendOutcomeLog(std::string &out, const trace::OutcomeEvent &ev,
                 std::size_t seq, bool first)
{
    if (!first)
        out += ",";
    out += "{\"timestamp\":";
    appendU64(out, ev.time / 1000);
    out += ",\"fields\":[";
    appendStringTag(out, "event", trace::outcomeKindName(ev.kind),
                    true);
    appendIntTag(out, "ditto.seq", seq, false);
    appendIntTag(out, "ditto.target", ev.target, false);
    appendIntTag(out, "ditto.endpoint", ev.endpoint, false);
    appendIntTag(out, "ditto.attempts", ev.attempts, false);
    appendStringTag(out, "ditto.time_ns", std::to_string(ev.time),
                    false);
    if (!ev.cause.empty())
        appendStringTag(out, "ditto.cause", ev.cause, false);
    out += "]}";
}

struct TraceGroup
{
    std::vector<std::size_t> spans;     //!< indices into tracer.spans()
    std::vector<std::size_t> edges;
    std::vector<std::size_t> outcomes;
};

} // namespace

std::string
exportJaegerJson(const trace::Tracer &tracer)
{
    const auto &spans = tracer.spans();
    const auto &edges = tracer.edges();
    const auto &outcomes = tracer.outcomes();

    std::map<std::uint64_t, TraceGroup> groups;
    for (std::size_t i = 0; i < spans.size(); ++i)
        groups[spans[i].traceId].spans.push_back(i);
    for (std::size_t i = 0; i < edges.size(); ++i)
        groups[edges[i].traceId].edges.push_back(i);
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        groups[outcomes[i].traceId].outcomes.push_back(i);

    // Synthetic span ids (edge spans, outcome carriers) live in the
    // top half of the id space; Tracer ids count up from 1 and never
    // reach it in practice.
    std::uint64_t syntheticId = 0x8000000000000000ull;

    std::string out;
    out.reserve(4096 + 256 * (spans.size() + edges.size()));
    out += "{\"data\":[";
    bool firstTrace = true;
    for (const auto &[traceId, group] : groups) {
        if (!firstTrace)
            out += ",";
        firstTrace = false;

        // Process table: one entry per service seen in this trace,
        // in sorted order.
        std::set<std::string> services;
        for (std::size_t i : group.spans)
            services.insert(spans[i].service);
        for (std::size_t i : group.edges)
            services.insert(edges[i].caller);
        for (std::size_t i : group.outcomes)
            services.insert(outcomes[i].service);
        std::map<std::string, std::string> pid;
        for (const auto &svc : services)
            pid[svc] = "p" + std::to_string(pid.size() + 1);

        // Each outcome becomes a log on the first sampled server span
        // of its service; leftovers go on a synthetic carrier span.
        std::map<std::string, std::size_t> firstSpanOfService;
        for (std::size_t i : group.spans)
            firstSpanOfService.emplace(spans[i].service, i);
        std::map<std::size_t, std::vector<std::size_t>> logsOnSpan;
        std::map<std::string, std::vector<std::size_t>> orphanLogs;
        for (std::size_t i : group.outcomes) {
            const auto it =
                firstSpanOfService.find(outcomes[i].service);
            if (it != firstSpanOfService.end())
                logsOnSpan[it->second].push_back(i);
            else
                orphanLogs[outcomes[i].service].push_back(i);
        }

        out += "{\"traceID\":";
        appendJsonString(out, hex16(traceId));
        out += ",\"spans\":[";
        bool firstSpan = true;

        for (std::size_t i : group.spans) {
            const trace::Span &s = spans[i];
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(s.traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(s.spanId));
            out += ",\"operationName\":";
            appendJsonString(out,
                             "ep" + std::to_string(s.endpoint));
            out += ",";
            appendReferences(out, s.traceId, s.parentSpanId);
            out += ",\"startTime\":";
            appendU64(out, s.start / 1000);
            out += ",\"duration\":";
            appendU64(out, (s.end - s.start) / 1000);
            out += ",\"processID\":";
            appendJsonString(out, pid[s.service]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "server", true);
            appendIntTag(out, "ditto.endpoint", s.endpoint, false);
            appendIntTag(out, "ditto.seq", i, false);
            appendStringTag(out, "ditto.start_ns",
                            std::to_string(s.start), false);
            appendStringTag(out, "ditto.end_ns",
                            std::to_string(s.end), false);
            out += "],\"logs\":[";
            bool firstLog = true;
            const auto lit = logsOnSpan.find(i);
            if (lit != logsOnSpan.end()) {
                for (std::size_t oi : lit->second) {
                    appendOutcomeLog(out, outcomes[oi], oi,
                                     firstLog);
                    firstLog = false;
                }
            }
            out += "]}";
        }

        for (std::size_t i : group.edges) {
            const trace::RpcEdge &e = edges[i];
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(e.traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(syntheticId++));
            out += ",\"operationName\":";
            appendJsonString(out,
                             "rpc:ep" + std::to_string(e.endpoint));
            out += ",";
            appendReferences(out, e.traceId, e.parentSpanId);
            out += ",\"startTime\":0,\"duration\":0,\"processID\":";
            appendJsonString(out, pid[e.caller]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "client", true);
            appendStringTag(out, "peer.service", e.callee, false);
            appendIntTag(out, "ditto.endpoint", e.endpoint, false);
            appendIntTag(out, "ditto.seq", i, false);
            appendIntTag(out, "ditto.request_bytes", e.requestBytes,
                         false);
            appendIntTag(out, "ditto.response_bytes",
                         e.responseBytes, false);
            if (e.deadlineNs != 0)
                appendStringTag(out, "ditto.deadline_ns",
                                std::to_string(e.deadlineNs), false);
            out += "],\"logs\":[]}";
        }

        for (const auto &[svc, logIdx] : orphanLogs) {
            if (!firstSpan)
                out += ",";
            firstSpan = false;
            out += "{\"traceID\":";
            appendJsonString(out, hex16(traceId));
            out += ",\"spanID\":";
            appendJsonString(out, hex16(syntheticId++));
            out += ",\"operationName\":\"outcome\",";
            appendReferences(out, traceId, 0);
            out += ",\"startTime\":0,\"duration\":0,\"processID\":";
            appendJsonString(out, pid[svc]);
            out += ",\"tags\":[";
            appendStringTag(out, "span.kind", "internal", true);
            out += "],\"logs\":[";
            bool firstLog = true;
            for (std::size_t oi : logIdx) {
                appendOutcomeLog(out, outcomes[oi], oi, firstLog);
                firstLog = false;
            }
            out += "]}";
        }

        out += "],\"processes\":{";
        bool firstProc = true;
        for (const auto &[svc, p] : pid) {
            if (!firstProc)
                out += ",";
            firstProc = false;
            appendJsonString(out, p);
            out += ":{\"serviceName\":";
            appendJsonString(out, svc);
            out += "}";
        }
        out += "}}";
    }
    out += "],\"dittoMeta\":{\"sampleRate\":";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", tracer.sampleRate());
    out += buf;
    out += "}}";
    return out;
}

void
writeJaegerJsonFile(const trace::Tracer &tracer,
                    const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("jaeger: cannot open " + path +
                                 " for writing");
    const std::string doc = exportJaegerJson(tracer);
    os.write(doc.data(),
             static_cast<std::streamsize>(doc.size()));
    if (!os)
        throw std::runtime_error("jaeger: short write to " + path);
}

namespace {

const JsonValue *
findTag(const JsonValue &span, const char *arrayKey,
        const std::string &key)
{
    const JsonValue *tags = span.find(arrayKey);
    if (!tags || !tags->isArray())
        return nullptr;
    for (const JsonValue &tag : tags->items) {
        const JsonValue *k = tag.find("key");
        if (k && k->asString() == key)
            return tag.find("value");
    }
    return nullptr;
}

std::uint64_t
tagU64(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? v->asU64() : 0;
}

/** Decimal-string tag holding a lossless u64 (e.g. ditto.start_ns). */
std::uint64_t
tagU64Str(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? parseDec(v->asString()) : 0;
}

std::string
tagString(const JsonValue &span, const std::string &key)
{
    const JsonValue *v = findTag(span, "tags", key);
    return v ? v->asString() : std::string{};
}

std::uint64_t
parentFromReferences(const JsonValue &span)
{
    const JsonValue *refs = span.find("references");
    if (!refs || !refs->isArray() || refs->items.empty())
        return 0;
    const JsonValue *sid = refs->items.front().find("spanID");
    return sid ? parseHex(sid->asString()) : 0;
}

} // namespace

trace::Tracer
importJaegerJson(const std::string &text)
{
    const JsonValue root = parseJson(text);
    double sampleRate = 1.0;
    if (const JsonValue *meta = root.find("dittoMeta")) {
        if (const JsonValue *r = meta->find("sampleRate"))
            sampleRate = r->asDouble();
    }
    const JsonValue *data = root.find("data");
    if (!data || !data->isArray())
        throw std::runtime_error("jaeger: missing data array");

    struct SeqSpan { std::uint64_t seq; trace::Span span; };
    struct SeqEdge { std::uint64_t seq; trace::RpcEdge edge; };
    struct SeqOutcome { std::uint64_t seq; trace::OutcomeEvent ev; };
    std::vector<SeqSpan> spans;
    std::vector<SeqEdge> edges;
    std::vector<SeqOutcome> outcomes;

    for (const JsonValue &tr : data->items) {
        const JsonValue *procs = tr.find("processes");
        std::map<std::string, std::string> pidToService;
        if (procs && procs->isObject()) {
            for (const auto &[p, v] : procs->members) {
                const JsonValue *n = v.find("serviceName");
                pidToService[p] = n ? n->asString() : std::string{};
            }
        }
        const JsonValue *spanArr = tr.find("spans");
        if (!spanArr || !spanArr->isArray())
            throw std::runtime_error("jaeger: trace without spans");
        for (const JsonValue &sp : spanArr->items) {
            const JsonValue *tid = sp.find("traceID");
            const JsonValue *pidv = sp.find("processID");
            if (!tid || !pidv)
                throw std::runtime_error(
                    "jaeger: span missing traceID/processID");
            const std::uint64_t traceId = parseHex(tid->asString());
            const std::string &service =
                pidToService[pidv->asString()];
            const std::string kind = tagString(sp, "span.kind");

            if (kind == "server") {
                trace::Span s;
                s.traceId = traceId;
                const JsonValue *sid = sp.find("spanID");
                s.spanId = sid ? parseHex(sid->asString()) : 0;
                s.parentSpanId = parentFromReferences(sp);
                s.service = service;
                s.endpoint = static_cast<std::uint32_t>(
                    tagU64(sp, "ditto.endpoint"));
                s.start = tagU64Str(sp, "ditto.start_ns");
                s.end = tagU64Str(sp, "ditto.end_ns");
                spans.push_back({tagU64(sp, "ditto.seq"), s});
            } else if (kind == "client") {
                trace::RpcEdge e;
                e.traceId = traceId;
                e.parentSpanId = parentFromReferences(sp);
                e.caller = service;
                e.callee = tagString(sp, "peer.service");
                e.endpoint = static_cast<std::uint32_t>(
                    tagU64(sp, "ditto.endpoint"));
                e.requestBytes = static_cast<std::uint32_t>(
                    tagU64(sp, "ditto.request_bytes"));
                e.responseBytes = static_cast<std::uint32_t>(
                    tagU64(sp, "ditto.response_bytes"));
                e.deadlineNs = tagU64Str(sp, "ditto.deadline_ns");
                edges.push_back({tagU64(sp, "ditto.seq"), e});
            }
            // Outcome logs may ride on any span kind.
            const JsonValue *logs = sp.find("logs");
            if (!logs || !logs->isArray())
                continue;
            for (const JsonValue &log : logs->items) {
                const JsonValue *name =
                    findTag(log, "fields", "event");
                trace::OutcomeKind kindVal;
                if (!name ||
                    !trace::outcomeKindFromName(name->asString(),
                                                kindVal))
                    continue;
                trace::OutcomeEvent ev;
                ev.traceId = traceId;
                ev.service = service;
                ev.kind = kindVal;
                const JsonValue *v =
                    findTag(log, "fields", "ditto.target");
                ev.target =
                    static_cast<std::uint32_t>(v ? v->asU64() : 0);
                v = findTag(log, "fields", "ditto.endpoint");
                ev.endpoint =
                    static_cast<std::uint32_t>(v ? v->asU64() : 0);
                v = findTag(log, "fields", "ditto.attempts");
                ev.attempts =
                    static_cast<unsigned>(v ? v->asU64() : 0);
                v = findTag(log, "fields", "ditto.time_ns");
                ev.time = v ? parseDec(v->asString()) : 0;
                v = findTag(log, "fields", "ditto.cause");
                ev.cause = v ? v->asString() : std::string{};
                v = findTag(log, "fields", "ditto.seq");
                outcomes.push_back({v ? v->asU64() : 0, ev});
            }
        }
    }

    const auto bySeq = [](const auto &a, const auto &b) {
        return a.seq < b.seq;
    };
    std::sort(spans.begin(), spans.end(), bySeq);
    std::sort(edges.begin(), edges.end(), bySeq);
    std::sort(outcomes.begin(), outcomes.end(), bySeq);

    trace::Tracer tracer(sampleRate);
    for (auto &s : spans)
        tracer.importSpan(std::move(s.span));
    for (auto &e : edges)
        tracer.importEdge(std::move(e.edge));
    for (auto &o : outcomes)
        tracer.importOutcome(std::move(o.ev));
    return tracer;
}

trace::Tracer
readJaegerJsonFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("jaeger: cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return importJaegerJson(ss.str());
}

} // namespace ditto::obs
