#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ditto::obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind == Kind::Unsigned)
        return unsignedValue;
    if (kind == Kind::Double && doubleValue > 0)
        return static_cast<std::uint64_t>(doubleValue);
    return 0;
}

double
JsonValue::asDouble() const
{
    if (kind == Kind::Unsigned)
        return static_cast<double>(unsignedValue);
    if (kind == Kind::Double)
        return doubleValue;
    return 0.0;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const char *what) const
    {
        failAt(pos_, what);
    }

    [[noreturn]] void
    failAt(std::size_t at, const char *what) const
    {
        throw std::runtime_error("json: " + std::string(what) +
                                 " at byte " + std::to_string(at));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
          }
          case 't': {
            if (!consumeLiteral("true"))
                fail("bad literal");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            if (!consumeLiteral("false"))
                fail("bad literal");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Our exports only escape control characters; encode
                // the code point as UTF-8 for completeness.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    std::size_t
    consumeDigits()
    {
        std::size_t n = 0;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
            ++n;
        }
        return n;
    }

    JsonValue
    parseNumber()
    {
        // Strict RFC 8259 number grammar. Foreign Jaeger exports carry
        // float microsecond timestamps and ids above 2^53, so every
        // token must either convert exactly or fail loudly with the
        // byte offset — a truncated or garbage-suffixed number here
        // silently corrupts the recovered trace downstream.
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            ++pos_;
        }
        const std::size_t intDigits = consumeDigits();
        if (intDigits == 0)
            failAt(start, "malformed number");
        if (intDigits > 1 && text_[start + (negative ? 1u : 0u)] == '0')
            failAt(start, "number has leading zero");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (consumeDigits() == 0)
                failAt(start, "number has empty fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (consumeDigits() == 0)
                failAt(start, "number has empty exponent");
        }
        const std::string tok = text_.substr(start, pos_ - start);
        JsonValue v;
        v.str = tok;  // raw literal, kept for lossless reconversion
        char *end = nullptr;
        if (integral && !negative) {
            v.kind = JsonValue::Kind::Unsigned;
            errno = 0;
            v.unsignedValue = std::strtoull(tok.c_str(), &end, 10);
            if (errno == ERANGE)
                failAt(start, "integer overflows uint64");
            if (end != tok.c_str() + tok.size())
                failAt(start, "malformed number");
        } else {
            v.kind = JsonValue::Kind::Double;
            errno = 0;
            v.doubleValue = std::strtod(tok.c_str(), &end);
            if (errno == ERANGE &&
                (v.doubleValue >= HUGE_VAL || v.doubleValue <= -HUGE_VAL))
                failAt(start, "number overflows double");
            if (end != tok.c_str() + tok.size())
                failAt(start, "malformed number");
        }
        return v;
    }
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace ditto::obs
