#include "obs/metrics.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace ditto::obs {

namespace {

/** Round-trippable double rendering (%.17g, "nan"-free for prom). */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::uint64_t
MetricsRegistry::Series::counterValue() const
{
    if (counter)
        return counter->value();
    if (counterFn)
        return counterFn();
    return 0;
}

double
MetricsRegistry::Series::gaugeValue() const
{
    if (gauge)
        return gauge->value();
    if (gaugeFn)
        return gaugeFn();
    return 0.0;
}

const stats::LatencyHistogram *
MetricsRegistry::Series::histogram() const
{
    if (timer)
        return &timer->histogram();
    return hist;
}

std::string
MetricsRegistry::renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k;
        out += "=";
        appendJsonString(out, v);  // same escaping rules as prom
    }
    out += "}";
    return out;
}

MetricsRegistry::Series &
MetricsRegistry::upsert(const std::string &name, const Labels &labels,
                        const std::string &help, Kind kind)
{
    const Key key{name, renderLabels(labels)};
    auto [it, inserted] = series_.try_emplace(key);
    Series &s = it->second;
    if (!inserted && s.kind != kind)
        throw std::logic_error("metrics: series " + name + key.second +
                               " re-registered with another kind");
    s.kind = kind;
    if (!help.empty())
        s.help = help;
    return s;
}

Counter &
MetricsRegistry::counter(const std::string &name, Labels labels,
                         const std::string &help)
{
    Series &s = upsert(name, labels, help, Kind::Counter);
    if (!s.counter) {
        if (s.counterFn)
            throw std::logic_error("metrics: " + name +
                                   " is a pull counter");
        s.counter = std::make_unique<Counter>();
    }
    return *s.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, Labels labels,
                       const std::string &help)
{
    Series &s = upsert(name, labels, help, Kind::Gauge);
    if (!s.gauge) {
        if (s.gaugeFn)
            throw std::logic_error("metrics: " + name +
                                   " is a pull gauge");
        s.gauge = std::make_unique<Gauge>();
    }
    return *s.gauge;
}

Timer &
MetricsRegistry::timer(const std::string &name, Labels labels,
                       const std::string &help)
{
    Series &s = upsert(name, labels, help, Kind::Summary);
    if (!s.timer) {
        if (s.hist)
            throw std::logic_error("metrics: " + name +
                                   " is a pull histogram");
        s.timer = std::make_unique<Timer>();
    }
    return *s.timer;
}

void
MetricsRegistry::addCounterFn(const std::string &name, Labels labels,
                              const std::string &help,
                              std::function<std::uint64_t()> fn)
{
    Series &s = upsert(name, labels, help, Kind::Counter);
    s.counter.reset();
    s.counterFn = std::move(fn);
}

void
MetricsRegistry::addGaugeFn(const std::string &name, Labels labels,
                            const std::string &help,
                            std::function<double()> fn)
{
    Series &s = upsert(name, labels, help, Kind::Gauge);
    s.gauge.reset();
    s.gaugeFn = std::move(fn);
}

void
MetricsRegistry::addHistogram(const std::string &name, Labels labels,
                              const std::string &help,
                              const stats::LatencyHistogram *hist)
{
    Series &s = upsert(name, labels, help, Kind::Summary);
    s.timer.reset();
    s.hist = hist;
}

std::uint64_t
MetricsRegistry::readCounter(const std::string &name,
                             const Labels &labels, bool *found) const
{
    const auto it = series_.find(Key{name, renderLabels(labels)});
    const bool ok =
        it != series_.end() && it->second.kind == Kind::Counter;
    if (found)
        *found = ok;
    return ok ? it->second.counterValue() : 0;
}

double
MetricsRegistry::readGauge(const std::string &name,
                           const Labels &labels, bool *found) const
{
    const auto it = series_.find(Key{name, renderLabels(labels)});
    const bool ok =
        it != series_.end() && it->second.kind == Kind::Gauge;
    if (found)
        *found = ok;
    return ok ? it->second.gaugeValue() : 0.0;
}

const stats::LatencyHistogram *
MetricsRegistry::findHistogram(const std::string &name,
                               const Labels &labels) const
{
    const auto it = series_.find(Key{name, renderLabels(labels)});
    if (it == series_.end() || it->second.kind != Kind::Summary)
        return nullptr;
    return it->second.histogram();
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    const std::string *lastName = nullptr;
    for (const auto &[key, s] : series_) {
        const auto &[name, labels] = key;
        if (!lastName || *lastName != name) {
            if (!s.help.empty())
                os << "# HELP " << name << " " << s.help << "\n";
            os << "# TYPE " << name << " ";
            switch (s.kind) {
              case Kind::Counter: os << "counter"; break;
              case Kind::Gauge: os << "gauge"; break;
              case Kind::Summary: os << "summary"; break;
            }
            os << "\n";
            lastName = &name;
        }
        switch (s.kind) {
          case Kind::Counter:
            os << name << labels << " " << s.counterValue() << "\n";
            break;
          case Kind::Gauge:
            os << name << labels << " "
               << formatDouble(s.gaugeValue()) << "\n";
            break;
          case Kind::Summary: {
            const stats::LatencyHistogram *h = s.histogram();
            if (!h)
                break;
            // Splice the quantile label into the label set.
            const std::string open = labels.empty()
                ? "{"
                : labels.substr(0, labels.size() - 1) + ",";
            for (const auto &[q, qs] :
                 {std::pair<double, const char *>{0.5, "0.5"},
                  {0.95, "0.95"},
                  {0.99, "0.99"}}) {
                os << name << open << "quantile=\"" << qs << "\"} "
                   << h->percentile(q) << "\n";
            }
            os << name << "_sum" << labels << " "
               << formatDouble(h->mean() *
                               static_cast<double>(h->count()))
               << "\n";
            os << name << "_count" << labels << " " << h->count()
               << "\n";
            break;
          }
        }
    }
}

std::string
MetricsRegistry::prometheusText() const
{
    std::ostringstream ss;
    writePrometheus(ss);
    return ss.str();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::string out;
    out += "{";
    for (int pass = 0; pass < 3; ++pass) {
        const Kind want = pass == 0
            ? Kind::Counter
            : pass == 1 ? Kind::Gauge : Kind::Summary;
        if (pass > 0)
            out += ",";
        out += pass == 0 ? "\"counters\":{"
                         : pass == 1 ? "\"gauges\":{"
                                     : "\"summaries\":{";
        bool first = true;
        for (const auto &[key, s] : series_) {
            if (s.kind != want)
                continue;
            if (!first)
                out += ",";
            first = false;
            appendJsonString(out, key.first + key.second);
            out += ":";
            switch (s.kind) {
              case Kind::Counter:
                out += std::to_string(s.counterValue());
                break;
              case Kind::Gauge:
                out += formatDouble(s.gaugeValue());
                break;
              case Kind::Summary: {
                const stats::LatencyHistogram *h = s.histogram();
                out += "{\"count\":";
                out += std::to_string(h ? h->count() : 0);
                out += ",\"sum\":";
                out += formatDouble(
                    h ? h->mean() * static_cast<double>(h->count())
                      : 0.0);
                out += ",\"min\":";
                out += std::to_string(h ? h->minValue() : 0);
                out += ",\"max\":";
                out += std::to_string(h ? h->maxValue() : 0);
                out += ",\"p50\":";
                out += std::to_string(h ? h->percentile(0.5) : 0);
                out += ",\"p95\":";
                out += std::to_string(h ? h->percentile(0.95) : 0);
                out += ",\"p99\":";
                out += std::to_string(h ? h->percentile(0.99) : 0);
                out += "}";
                break;
              }
            }
        }
        out += "}";
    }
    out += "}";
    os << out;
}

std::string
MetricsRegistry::jsonText() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

} // namespace ditto::obs
