/**
 * @file
 * Metrics registry with Prometheus-text and JSON snapshot writers.
 *
 * Two ways to get a series in:
 *
 *  1. Owned instruments -- counter()/gauge()/timer() return objects
 *     the caller updates directly. Counters and gauges are atomics
 *     with relaxed ordering (lock-free on every platform we target),
 *     so instrumented code never takes a lock. Timers wrap a
 *     stats::LatencyHistogram and belong to one run/thread at a time,
 *     like every other per-deployment object (DESIGN.md §8).
 *
 *  2. Pull callbacks -- addCounterFn()/addGaugeFn()/addHistogram()
 *     sample existing state (ServiceStats, os::Network, os::Disk,
 *     fault::InjectorStats, ...) only when a snapshot is written.
 *     This is how the simulator's hot paths stay untouched: the
 *     zero-cost-when-disabled contract of DESIGN.md §7 extends to
 *     observability, since registration adds no work per event.
 *
 * Naming convention: ditto_<subsystem>_<metric>[_<unit>][_total],
 * Prometheus style -- e.g. ditto_service_rx_bytes_total,
 * ditto_network_messages_in_flight, ditto_disk_queue_depth. Series
 * are keyed by (name, label set); snapshots emit them in sorted key
 * order, so a snapshot's bytes are a pure function of the registered
 * values (deterministic at any RunExecutor worker count).
 */

#ifndef DITTO_OBS_METRICS_H_
#define DITTO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace ditto::obs {

/** Monotonically increasing counter (relaxed atomic). */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (relaxed atomic). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Latency recorder backed by a LatencyHistogram (ns values). */
class Timer
{
  public:
    void observe(std::uint64_t ns) { hist_.record(ns); }

    const stats::LatencyHistogram &histogram() const { return hist_; }

  private:
    stats::LatencyHistogram hist_;
};

class MetricsRegistry
{
  public:
    /** Label set, e.g. {{"service", "front"}}. */
    using Labels = std::vector<std::pair<std::string, std::string>>;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Get or create an owned instrument. Throws std::logic_error if
     * the (name, labels) series already exists with another kind.
     */
    Counter &counter(const std::string &name, Labels labels = {},
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, Labels labels = {},
                 const std::string &help = "");
    Timer &timer(const std::string &name, Labels labels = {},
                 const std::string &help = "");

    /**
     * Register pull-style series. The callback (or pointed-to
     * histogram) is invoked at snapshot time only and must outlive
     * the registry. Re-registering an existing series replaces its
     * source.
     */
    void addCounterFn(const std::string &name, Labels labels,
                      const std::string &help,
                      std::function<std::uint64_t()> fn);
    void addGaugeFn(const std::string &name, Labels labels,
                    const std::string &help,
                    std::function<double()> fn);
    void addHistogram(const std::string &name, Labels labels,
                      const std::string &help,
                      const stats::LatencyHistogram *hist);

    /** Number of registered series. */
    std::size_t size() const { return series_.size(); }

    // ---- read-back (autoscaler control inputs) ----------------------
    // Sample a registered series by (name, labels). Missing series
    // read as 0 / nullptr; `found` (when non-null) reports existence.

    std::uint64_t readCounter(const std::string &name,
                              const Labels &labels = {},
                              bool *found = nullptr) const;
    double readGauge(const std::string &name, const Labels &labels = {},
                     bool *found = nullptr) const;
    const stats::LatencyHistogram *
    findHistogram(const std::string &name,
                  const Labels &labels = {}) const;

    /**
     * Prometheus text exposition format (HELP/TYPE per metric name;
     * histograms render as summaries with p50/p95/p99 quantiles).
     */
    void writePrometheus(std::ostream &os) const;
    std::string prometheusText() const;

    /** JSON snapshot: {"counters":{},"gauges":{},"summaries":{}}. */
    void writeJson(std::ostream &os) const;
    std::string jsonText() const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Summary,
    };

    struct Series
    {
        Kind kind = Kind::Counter;
        std::string help;
        // Owned instruments (at most one non-null).
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Timer> timer;
        // Pull sources.
        std::function<std::uint64_t()> counterFn;
        std::function<double()> gaugeFn;
        const stats::LatencyHistogram *hist = nullptr;

        std::uint64_t counterValue() const;
        double gaugeValue() const;
        const stats::LatencyHistogram *histogram() const;
    };

    /** (metric name, rendered label string) -- sorted snapshot order. */
    using Key = std::pair<std::string, std::string>;

    std::map<Key, Series> series_;

    Series &upsert(const std::string &name, const Labels &labels,
                   const std::string &help, Kind kind);

    static std::string renderLabels(const Labels &labels);
};

} // namespace ditto::obs

#endif // DITTO_OBS_METRICS_H_
