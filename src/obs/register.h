/**
 * @file
 * Standard metric registrations for the simulator's subsystems.
 *
 * Everything here is pull-based: registration captures pointers into
 * the deployment (ServiceStats, Network, Disk, Tracer, InjectorStats)
 * and reads them only when a snapshot is written, so the simulation
 * hot paths are untouched and the zero-cost-when-disabled contract
 * (DESIGN.md §7) holds. The deployment/injector must outlive the
 * registry's last snapshot.
 */

#ifndef DITTO_OBS_REGISTER_H_
#define DITTO_OBS_REGISTER_H_

#include "obs/metrics.h"

namespace ditto::app {
class Deployment;
class ServiceInstance;
} // namespace ditto::app

namespace ditto::fault {
class FaultInjector;
} // namespace ditto::fault

namespace ditto::obs {

/**
 * Register per-service counters + latency histograms, network
 * message/byte counters, per-machine disk counters, tracer outcome
 * counters, and the simulation clock. Call after all deploys.
 */
void registerDeploymentMetrics(MetricsRegistry &registry,
                               app::Deployment &deployment);

/**
 * Register one service instance's counters, latency histogram, and
 * inbound-queue-depth gauge, labelled by its instanceLabel() (the
 * service name for replica 0, "name@k" beyond -- replicas get
 * distinct series). registerDeploymentMetrics calls this for every
 * instance; the autoscaler calls it for replicas added mid-run.
 */
void registerServiceMetrics(MetricsRegistry &registry,
                            app::ServiceInstance &service);

/** Register fault-injection window counters. */
void registerInjectorMetrics(MetricsRegistry &registry,
                             const fault::FaultInjector &injector);

} // namespace ditto::obs

#endif // DITTO_OBS_REGISTER_H_
