#include "obs/register.h"

#include "app/deployment.h"
#include "fault/fault_injector.h"
#include "os/disk.h"
#include "os/machine.h"

namespace ditto::obs {

namespace {

/** Register one pull counter reading a ServiceStats field. */
void
serviceCounter(MetricsRegistry &reg, app::ServiceInstance *svc,
               const char *name, const char *help,
               std::uint64_t app::ServiceStats::*field)
{
    reg.addCounterFn(name, {{"service", svc->instanceLabel()}}, help,
                     [svc, field] { return svc->stats().*field; });
}

} // namespace

void
registerServiceMetrics(MetricsRegistry &reg,
                       app::ServiceInstance &service)
{
    app::ServiceInstance *svc = &service;
    serviceCounter(reg, svc, "ditto_service_requests_total",
                   "Requests served", &app::ServiceStats::requests);
    serviceCounter(reg, svc, "ditto_service_rx_bytes_total",
                   "Payload bytes received",
                   &app::ServiceStats::rxBytes);
    serviceCounter(reg, svc, "ditto_service_tx_bytes_total",
                   "Payload bytes sent", &app::ServiceStats::txBytes);
    serviceCounter(reg, svc, "ditto_service_disk_read_bytes_total",
                   "Bytes read from disk",
                   &app::ServiceStats::diskReadBytes);
    serviceCounter(reg, svc, "ditto_service_disk_write_bytes_total",
                   "Bytes written to disk",
                   &app::ServiceStats::diskWriteBytes);
    serviceCounter(reg, svc, "ditto_service_rpc_ok_total",
                   "Downstream calls answered in time",
                   &app::ServiceStats::rpcOk);
    serviceCounter(reg, svc, "ditto_service_rpc_retries_total",
                   "Retry attempts issued",
                   &app::ServiceStats::rpcRetries);
    serviceCounter(reg, svc, "ditto_service_rpc_timeouts_total",
                   "Downstream calls failed after all attempts",
                   &app::ServiceStats::rpcTimeouts);
    serviceCounter(reg, svc,
                   "ditto_service_rpc_breaker_fast_fails_total",
                   "Calls rejected by an open circuit breaker",
                   &app::ServiceStats::rpcBreakerFastFails);
    serviceCounter(reg, svc,
                   "ditto_service_rpc_stale_responses_total",
                   "Late replies discarded by tag",
                   &app::ServiceStats::rpcStaleResponses);
    serviceCounter(reg, svc, "ditto_service_requests_shed_total",
                   "Inbound requests shed",
                   &app::ServiceStats::requestsShed);
    serviceCounter(reg, svc, "ditto_service_requests_degraded_total",
                   "Responses sent with Error status",
                   &app::ServiceStats::requestsDegraded);
    serviceCounter(reg, svc, "ditto_service_rpc_calls_started_total",
                   "Downstream calls issued (conservation basis)",
                   &app::ServiceStats::rpcCallsStarted);
    serviceCounter(reg, svc, "ditto_service_rpc_cancelled_total",
                   "Downstream calls abandoned by cancellation",
                   &app::ServiceStats::rpcCancelled);
    serviceCounter(reg, svc, "ditto_service_rpc_hedges_total",
                   "Hedge attempts launched",
                   &app::ServiceStats::rpcHedges);
    serviceCounter(reg, svc, "ditto_service_rpc_hedge_wins_total",
                   "Calls won by the hedge attempt",
                   &app::ServiceStats::rpcHedgeWins);
    serviceCounter(reg, svc,
                   "ditto_service_requests_cancelled_total",
                   "Inbound requests cancelled before completion",
                   &app::ServiceStats::requestsCancelled);
    reg.addHistogram("ditto_service_request_latency_ns",
                     {{"service", svc->instanceLabel()}},
                     "Server-side request latency (ns)",
                     &svc->stats().latency);
    reg.addGaugeFn("ditto_service_inbound_queue_depth",
                   {{"service", svc->instanceLabel()}},
                   "Requests queued on inbound connections", [svc] {
                       return static_cast<double>(
                           svc->inboundQueueDepth());
                   });

    // Circuit breaker series: one {service, downstream} pair per RPC
    // edge, registered only when the breaker policy is enabled (no
    // series -- and no output change -- otherwise).
    if (svc->spec().resilience.breaker.enabled) {
        const auto &downs = svc->spec().downstreams;
        for (std::uint32_t t = 0;
             t < static_cast<std::uint32_t>(downs.size()); ++t) {
            const MetricsRegistry::Labels labels{
                {"downstream", downs[t]},
                {"service", svc->instanceLabel()}};
            reg.addGaugeFn(
                "ditto_breaker_state", labels,
                "Breaker state (0=closed 1=open 2=half-open)",
                [svc, t] {
                    const app::CircuitBreaker *cb = svc->breaker(t);
                    return cb ? static_cast<double>(
                                    static_cast<std::uint8_t>(
                                        cb->state()))
                              : 0.0;
                });
            reg.addCounterFn(
                "ditto_breaker_opened_total", labels,
                "Times the breaker tripped to Open", [svc, t] {
                    const app::CircuitBreaker *cb = svc->breaker(t);
                    return cb ? cb->timesOpened()
                              : std::uint64_t{0};
                });
        }
    }

    // Overload-control series, present only when the controller is
    // armed (OverloadSpec::any()).
    if (const app::OverloadController *ov = svc->overload()) {
        const MetricsRegistry::Labels labels{
            {"service", svc->instanceLabel()}};
        reg.addGaugeFn("ditto_overload_limit", labels,
                       "Adaptive concurrency limit", [ov] {
                           return static_cast<double>(
                               ov->currentLimit());
                       });
        reg.addGaugeFn("ditto_overload_baseline_ns", labels,
                       "Latency baseline the limiter adapts against",
                       [ov] { return ov->baselineNs(); });
        reg.addGaugeFn("ditto_overload_brownout_active", labels,
                       "1 while optional RPC edges are skipped",
                       [svc] {
                           return svc->brownoutActive() ? 1.0 : 0.0;
                       });
        reg.addCounterFn("ditto_overload_limit_sheds_total", labels,
                         "Requests shed by the concurrency limit",
                         [ov] { return ov->limitSheds(); });
        reg.addCounterFn("ditto_overload_sojourn_sheds_total",
                         labels,
                         "Requests shed for excess queue sojourn",
                         [ov] { return ov->sojournSheds(); });
        reg.addCounterFn(
            "ditto_overload_deadline_sheds_total", labels,
            "Requests shed as unable to meet their deadline",
            [ov] { return ov->deadlineSheds(); });
        reg.addCounterFn("ditto_overload_congested_windows_total",
                         labels, "Windows that tripped the limiter",
                         [ov] { return ov->congestedWindows(); });
        reg.addCounterFn(
            "ditto_overload_uncongested_windows_total", labels,
            "Windows that grew the limit",
            [ov] { return ov->uncongestedWindows(); });
        serviceCounter(reg, svc, "ditto_overload_brownout_skips_total",
                       "Optional RPC edges skipped in brownout",
                       &app::ServiceStats::rpcBrownoutSkipped);
    }

    // Server-side retry budget series (RetryPolicy::budgetRatio > 0).
    if (svc->retryBudget().enabled()) {
        const MetricsRegistry::Labels labels{
            {"service", svc->instanceLabel()}};
        reg.addGaugeFn("ditto_retry_budget_tokens", labels,
                       "Retry-budget tokens available", [svc] {
                           return svc->retryBudget().tokens();
                       });
        serviceCounter(
            reg, svc, "ditto_overload_retries_suppressed_total",
            "Retries suppressed by the exhausted retry budget",
            &app::ServiceStats::rpcRetriesSuppressed);
    }
}

void
registerDeploymentMetrics(MetricsRegistry &reg,
                          app::Deployment &dep)
{
    for (const auto &svcPtr : dep.services())
        registerServiceMetrics(reg, *svcPtr);

    os::Network *net = &dep.network();
    reg.addCounterFn("ditto_network_messages_sent_total", {},
                     "Messages handed to the network",
                     [net] { return net->messagesSent(); });
    reg.addCounterFn("ditto_network_messages_delivered_total", {},
                     "Messages delivered to a peer socket",
                     [net] { return net->messagesDelivered(); });
    reg.addCounterFn("ditto_network_messages_dropped_total", {},
                     "Messages lost to faults/crashes",
                     [net] { return net->messagesDropped(); });
    reg.addGaugeFn("ditto_network_messages_in_flight", {},
                   "Messages sent but not yet delivered or dropped",
                   [net] {
                       return static_cast<double>(
                           net->messagesInFlight());
                   });
    reg.addCounterFn("ditto_network_bytes_sent_total", {},
                     "Payload bytes handed to the network",
                     [net] { return net->bytesSent(); });
    reg.addCounterFn("ditto_network_bytes_delivered_total", {},
                     "Payload bytes delivered",
                     [net] { return net->bytesDelivered(); });
    reg.addCounterFn("ditto_network_bytes_dropped_total", {},
                     "Payload bytes lost to faults/crashes",
                     [net] { return net->bytesDropped(); });

    // WAN links: one counter set per directed region pair. The map is
    // empty (and nothing is registered) in single-region deployments.
    for (const auto &entry : net->wanLinks()) {
        const MetricsRegistry::Labels labels{
            {"from", dep.regionName(entry.first.first)},
            {"to", dep.regionName(entry.first.second)}};
        const os::WanLinkStats *ls = &entry.second.stats;
        reg.addCounterFn("ditto_wan_messages_sent_total", labels,
                         "Messages entering the WAN link",
                         [ls] { return ls->msgsSent; });
        reg.addCounterFn("ditto_wan_messages_delivered_total", labels,
                         "Messages delivered across the WAN link",
                         [ls] { return ls->msgsDelivered; });
        reg.addCounterFn("ditto_wan_messages_dropped_total", labels,
                         "Messages lost on the WAN link",
                         [ls] { return ls->msgsDropped; });
        reg.addCounterFn("ditto_wan_bytes_sent_total", labels,
                         "Payload bytes entering the WAN link",
                         [ls] { return ls->bytesSent; });
        reg.addCounterFn("ditto_wan_bytes_delivered_total", labels,
                         "Payload bytes delivered across the WAN link",
                         [ls] { return ls->bytesDelivered; });
        reg.addCounterFn("ditto_wan_bytes_dropped_total", labels,
                         "Payload bytes lost on the WAN link",
                         [ls] { return ls->bytesDropped; });
    }

    for (const auto &mPtr : dep.machines()) {
        os::Machine *m = mPtr.get();
        const MetricsRegistry::Labels labels{{"machine", m->name()}};
        reg.addCounterFn("ditto_disk_read_bytes_total", labels,
                         "Bytes read from the machine's disk",
                         [m] { return m->disk().readBytes(); });
        reg.addCounterFn("ditto_disk_write_bytes_total", labels,
                         "Bytes written to the machine's disk",
                         [m] { return m->disk().writeBytes(); });
        reg.addCounterFn("ditto_disk_requests_total", labels,
                         "I/O requests submitted",
                         [m] { return m->disk().requests(); });
        reg.addGaugeFn("ditto_disk_queue_depth", labels,
                       "Outstanding queued I/O requests", [m] {
                           return static_cast<double>(
                               m->disk().queueDepth());
                       });
        reg.addGaugeFn("ditto_disk_slowdown", labels,
                       "Fault-injected service-time factor",
                       [m] { return m->disk().slowdown(); });
    }

    trace::Tracer *tracer = &dep.tracer();
    for (std::size_t i = 0; i < trace::kOutcomeKinds; ++i) {
        const auto kind = static_cast<trace::OutcomeKind>(i);
        reg.addCounterFn(
            "ditto_trace_outcomes_total",
            {{"kind", trace::outcomeKindName(kind)}},
            "Exact resilience outcome count (unsampled)",
            [tracer, kind] { return tracer->outcomeCount(kind); });
    }
    reg.addGaugeFn("ditto_trace_spans_sampled", {},
                   "Server spans retained by head sampling", [tracer] {
                       return static_cast<double>(
                           tracer->spans().size());
                   });
    reg.addGaugeFn("ditto_trace_edges_sampled", {},
                   "RPC edges retained by head sampling", [tracer] {
                       return static_cast<double>(
                           tracer->edges().size());
                   });

    sim::EventQueue *events = &dep.events();
    reg.addGaugeFn("ditto_sim_now_ns", {},
                   "Simulated clock (ns)", [events] {
                       return static_cast<double>(events->now());
                   });
}

void
registerInjectorMetrics(MetricsRegistry &reg,
                        const fault::FaultInjector &inj)
{
    const fault::FaultInjector *p = &inj;
    reg.addCounterFn("ditto_fault_windows_started_total", {},
                     "Fault windows begun",
                     [p] { return p->stats().windowsStarted; });
    reg.addCounterFn("ditto_fault_windows_ended_total", {},
                     "Fault windows ended",
                     [p] { return p->stats().windowsEnded; });
    reg.addCounterFn("ditto_fault_unresolved_targets_total", {},
                     "Fault specs naming unknown targets",
                     [p] { return p->stats().unresolvedTargets; });
    reg.addGaugeFn("ditto_fault_windows_active", {},
                   "Fault windows currently active", [p] {
                       return static_cast<double>(
                           p->stats().windowsActive());
                   });
}

} // namespace ditto::obs
