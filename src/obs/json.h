/**
 * @file
 * Minimal JSON value, recursive-descent parser, and writer.
 *
 * The observability layer needs to read back its own Jaeger-JSON
 * trace exports without pulling in a third-party dependency. This is
 * a small, strict subset of JSON sufficient for that: objects keep
 * member order, integers that fit in uint64 parse losslessly, and the
 * writer escapes strings per RFC 8259.
 */

#ifndef DITTO_OBS_JSON_H_
#define DITTO_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ditto::obs {

/** A parsed JSON value (tree). */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Unsigned,  //!< non-negative integer literal (lossless u64)
        Double,    //!< negative, fractional, or exponent literal
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::uint64_t unsignedValue = 0;
    double doubleValue = 0.0;
    /**
     * String content for Kind::String; for numbers, the raw source
     * literal (e.g. "123.456"), so callers can reconvert units
     * losslessly instead of going through a rounded double.
     */
    std::string str;
    std::vector<JsonValue> items;  //!< Array elements
    /** Object members in document order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Numeric value as u64 (Unsigned exactly, Double truncated). */
    std::uint64_t asU64() const;
    double asDouble() const;
    /** String content (raw literal for numbers), "" otherwise. */
    const std::string &asString() const { return str; }
};

/**
 * Parse a complete JSON document. Throws std::runtime_error with a
 * byte offset on malformed input or trailing garbage.
 */
JsonValue parseJson(const std::string &text);

/** Append `s` to `out` as a quoted, escaped JSON string literal. */
void appendJsonString(std::string &out, const std::string &s);

} // namespace ditto::obs

#endif // DITTO_OBS_JSON_H_
