/**
 * @file
 * Jaeger-compatible JSON trace export and re-ingestion.
 *
 * The exporter renders a Tracer's collected record -- server spans,
 * client RPC edges, and resilience outcome events -- in the JSON
 * layout Jaeger's HTTP API serves ({"data": [{traceID, spans,
 * processes}]}), so the files load in standard trace tooling. The
 * importer parses such a file back into a Tracer whose spans(),
 * edges(), and outcomes() vectors are element-for-element identical
 * to the exported ones, which is what lets TopologyAnalyzer recover
 * a bit-identical DAG from the on-disk file (the Ditto ingestion
 * path, Sec. 4.2).
 *
 * Encoding notes:
 *  - RPC edges become zero-duration client-kind spans tagged with
 *    peer.service and request/response byte sizes.
 *  - Outcome events become span logs on the matching server span (or
 *    on a synthetic "outcome" span when the server span was not
 *    sampled).
 *  - Jaeger timestamps are microseconds; the exact nanosecond values
 *    ride along in ditto.*_ns string tags so no precision is lost.
 *  - Every record carries a ditto.seq tag with its original vector
 *    index; the importer sorts by it to restore exact record order.
 *
 * Foreign traces: documents without the dittoMeta marker are treated
 * as exports from a system we do not control (the actual Ditto use
 * case). The importer then tolerates the wild-west parts of real
 * Jaeger output -- float microsecond timestamps (converted to ns
 * losslessly from the source literal), 128-bit trace ids (low 64 bits
 * kept), client spans that parent the callee's server span, byte
 * sizes in http.*_content_length tags, and endpoint names given only
 * as operationName strings (interned per service in document order).
 * Malformed structure is never silently dropped: duplicate spanIDs,
 * parents referencing missing spans, zero/negative durations, and
 * unknown processIDs raise named errors, or -- with
 * ImportOptions::lenient -- are repaired and tallied in ImportReport.
 *
 * Determinism: the exported bytes are a pure function of the Tracer
 * contents, so two runs that produce identical traces (same seed, any
 * RunExecutor worker count -- DESIGN.md §8) export identical files.
 *
 * Caveat: exact per-kind outcome counters survive the round trip only
 * at sampleRate 1.0; at lower rates the re-imported counters reflect
 * just the sampled events that were exported.
 */

#ifndef DITTO_OBS_JAEGER_H_
#define DITTO_OBS_JAEGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace ditto::obs {

/** Render the tracer's record as a Jaeger-JSON document. */
std::string exportJaegerJson(const trace::Tracer &tracer);

/** Export to a file. Throws std::runtime_error on I/O failure. */
void writeJaegerJsonFile(const trace::Tracer &tracer,
                         const std::string &path);

/** Import behavior knobs (only affect foreign documents). */
struct ImportOptions
{
    /**
     * Downgrade recoverable foreign-trace defects (duplicate spanID,
     * missing parent, zero/negative duration, unknown processID,
     * calleeless client span) from errors to counted warnings with a
     * documented repair: keep-first, reparent-to-root, clamp-to-zero,
     * skip-span, drop-edge respectively.
     */
    bool lenient = false;
    /** Cap on retained warning strings; counters stay exact. */
    std::size_t maxWarnings = 32;
};

/** What the importer saw and (in lenient mode) repaired. */
struct ImportReport
{
    std::uint64_t traces = 0;
    std::uint64_t nativeSpans = 0;   //!< spans from a dittoMeta doc
    std::uint64_t foreignSpans = 0;  //!< server spans kept, foreign doc
    std::uint64_t clientSpans = 0;   //!< foreign client spans -> edges
    std::uint64_t derivedEdges = 0;  //!< edges from server-span parentage
    std::uint64_t internalSpans = 0; //!< non server/client kinds skipped
    // -- foreign-trace defects (errors unless lenient) ----------------
    std::uint64_t duplicateSpans = 0;
    std::uint64_t missingParents = 0;
    std::uint64_t zeroDurationSpans = 0;
    std::uint64_t negativeDurationSpans = 0;
    std::uint64_t unknownProcessSpans = 0;
    std::uint64_t calleelessClientSpans = 0;
    /** First ImportOptions::maxWarnings human-readable messages. */
    std::vector<std::string> warnings;
    /**
     * Foreign endpoint interning: service -> operationName per
     * endpoint id, in first-appearance document order. Span::endpoint
     * indexes into this; clone synthesis reuses the same ids.
     */
    std::map<std::string, std::vector<std::string>> endpointNames;

    bool foreign() const { return foreignSpans > 0; }
    std::uint64_t defects() const
    {
        return duplicateSpans + missingParents + zeroDurationSpans +
               negativeDurationSpans + unknownProcessSpans +
               calleelessClientSpans;
    }
};

/**
 * Parse a Jaeger-JSON document -- our own export or a foreign one --
 * back into a Tracer. Throws std::runtime_error with a named,
 * actionable message on malformed input; with opts.lenient,
 * recoverable foreign defects are repaired and tallied in *report
 * instead. `report` (optional) also receives ingest statistics and
 * the foreign endpoint-name interning table.
 */
trace::Tracer importJaegerJson(const std::string &text,
                               const ImportOptions &opts,
                               ImportReport *report = nullptr);

/** Strict-mode convenience overload. */
trace::Tracer importJaegerJson(const std::string &text);

/** Import from a file. Throws std::runtime_error on I/O failure. */
trace::Tracer readJaegerJsonFile(const std::string &path,
                                 const ImportOptions &opts,
                                 ImportReport *report = nullptr);
trace::Tracer readJaegerJsonFile(const std::string &path);

} // namespace ditto::obs

#endif // DITTO_OBS_JAEGER_H_
