/**
 * @file
 * Jaeger-compatible JSON trace export and re-ingestion.
 *
 * The exporter renders a Tracer's collected record -- server spans,
 * client RPC edges, and resilience outcome events -- in the JSON
 * layout Jaeger's HTTP API serves ({"data": [{traceID, spans,
 * processes}]}), so the files load in standard trace tooling. The
 * importer parses such a file back into a Tracer whose spans(),
 * edges(), and outcomes() vectors are element-for-element identical
 * to the exported ones, which is what lets TopologyAnalyzer recover
 * a bit-identical DAG from the on-disk file (the Ditto ingestion
 * path, Sec. 4.2).
 *
 * Encoding notes:
 *  - RPC edges become zero-duration client-kind spans tagged with
 *    peer.service and request/response byte sizes.
 *  - Outcome events become span logs on the matching server span (or
 *    on a synthetic "outcome" span when the server span was not
 *    sampled).
 *  - Jaeger timestamps are microseconds; the exact nanosecond values
 *    ride along in ditto.*_ns string tags so no precision is lost.
 *  - Every record carries a ditto.seq tag with its original vector
 *    index; the importer sorts by it to restore exact record order.
 *
 * Determinism: the exported bytes are a pure function of the Tracer
 * contents, so two runs that produce identical traces (same seed, any
 * RunExecutor worker count -- DESIGN.md §8) export identical files.
 *
 * Caveat: exact per-kind outcome counters survive the round trip only
 * at sampleRate 1.0; at lower rates the re-imported counters reflect
 * just the sampled events that were exported.
 */

#ifndef DITTO_OBS_JAEGER_H_
#define DITTO_OBS_JAEGER_H_

#include <string>

#include "trace/tracer.h"

namespace ditto::obs {

/** Render the tracer's record as a Jaeger-JSON document. */
std::string exportJaegerJson(const trace::Tracer &tracer);

/** Export to a file. Throws std::runtime_error on I/O failure. */
void writeJaegerJsonFile(const trace::Tracer &tracer,
                         const std::string &path);

/**
 * Parse a Jaeger-JSON document produced by exportJaegerJson back into
 * a Tracer. Throws std::runtime_error on malformed input.
 */
trace::Tracer importJaegerJson(const std::string &text);

/** Import from a file. Throws std::runtime_error on I/O failure. */
trace::Tracer readJaegerJsonFile(const std::string &path);

} // namespace ditto::obs

#endif // DITTO_OBS_JAEGER_H_
