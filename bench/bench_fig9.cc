/**
 * @file
 * Fig. 9: decomposition of Ditto's accuracy on MongoDB. Starting
 * from the bare skeleton (A), each generator stage is enabled
 * cumulatively -- syscalls (B), instruction count (C), instruction
 * mix (D), branch behaviour (E), instruction memory (F), data memory
 * (G), data dependencies (H) -- and finally fine tuning (I). For each
 * step the clone is regenerated, redeployed, and measured: IPC,
 * instructions, cycles, p99 latency vs the original's targets.
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig9");
    sim::RunExecutor &ex = rt.executor();
    const hw::PlatformSpec platform = hw::platformA();
    const AppCase mongo{"MongoDB", apps::mongodbSpec(),
                        apps::mongodbLoad()};
    const workload::LoadSpec load =
        mongo.load.at(mongo.load.mediumQps);

    // ---- profile the original once at medium load ---------------------
    std::cout << "Profiling MongoDB at medium load...\n";
    app::Deployment dep(91);
    os::Machine &machine = dep.addMachine("node", platform);
    app::ServiceInstance &svc = dep.deploy(mongo.spec, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, 5);
    gen.start();

    core::CloneOptions opts;
    opts.fineTune = false;
    opts.profiling.warmup = sim::milliseconds(150);
    opts.profiling.window = sim::milliseconds(120);
    core::CloneResult base =
        core::cloneService(dep, svc, load, platform, opts);

    // ---- target + per-stage runs, fanned out in parallel ---------------
    auto targetFuture = ex.submit([&mongo, &load, &platform] {
        return runSingleTier(mongo.spec, load, platform);
    });
    const double reqs = 1.0;  // per-request metrics below

    stats::printBanner(
        std::cout,
        "Fig. 9: accuracy evolution for MongoDB as generator stages "
        "are enabled");

    const std::map<std::string, std::string> nameMap = {
        {"mongodb", "mongodb_clone"}};
    const workload::LoadSpec cloneLoad = core::cloneLoadSpec(load);

    const struct
    {
        char stage;
        const char *label;
    } stages[] = {
        {'A', "A:Skeleton"}, {'B', "B:Syscall"}, {'C', "C:#insts"},
        {'D', "D:Inst. mix"}, {'E', "E:Branch"}, {'F', "F:I-mem"},
        {'G', "G:D-mem"}, {'H', "H:Data dep."},
    };

    // Each stage regenerates + measures its own clone in an
    // independent seeded deployment: fan them all out, join in
    // submission order.
    std::vector<std::function<RunResult()>> stageTasks;
    for (const auto &[stage, label] : stages) {
        const char st = stage;
        stageTasks.push_back([st, &base, &nameMap, &cloneLoad,
                              &platform] {
            const app::ServiceSpec spec = core::generateClone(
                base.profile, base.skeleton, {}, nameMap,
                core::GenerationConfig::stage(st));
            return runSingleTier(spec, cloneLoad, platform);
        });
    }
    const std::vector<RunResult> stageRuns =
        ex.runOrdered<RunResult>(std::move(stageTasks));
    const RunResult target = ex.collect(std::move(targetFuture));

    stats::TablePrinter table(
        {"stage", "IPC", "insts/req", "cycles/req", "p99 (ms)"});
    table.addRow({"target (actual)", cell(target.report.ipc, 3),
                  cell(target.report.instructionsPerRequest / reqs, 0),
                  cell(target.report.cyclesPerRequest, 0),
                  cell(target.report.p99LatencyMs, 3)});
    table.addSeparator();

    const core::GenerationConfig lastCfg =
        core::GenerationConfig::stage('H');
    for (std::size_t i = 0; i < std::size(stages); ++i) {
        const RunResult &run = stageRuns[i];
        table.addRow({stages[i].label, cell(run.report.ipc, 3),
                      cell(run.report.instructionsPerRequest, 0),
                      cell(run.report.cyclesPerRequest, 0),
                      cell(run.report.p99LatencyMs, 3)});
        std::cout << "  " << stages[i].label << " done\n";
    }

    // ---- I: fine tuning --------------------------------------------------
    std::cout << "  I:Tune (feedback calibration)...\n";
    core::CloneRunner runner = [&](const core::GenerationConfig &cfg) {
        const app::ServiceSpec spec = core::generateClone(
            base.profile, base.skeleton, {}, nameMap, cfg);
        const RunResult run =
            runSingleTier(spec, cloneLoad, platform,
                          sim::milliseconds(150),
                          sim::milliseconds(200));
        return run.report;
    };
    core::TuneOptions tuneOpts;
    tuneOpts.maxIterations = 10;
    tuneOpts.tolerance = 0.05;
    tuneOpts.executor = &ex;
    const core::TuneResult tuned = core::fineTune(
        base.profile.reference, lastCfg, runner, tuneOpts);
    const app::ServiceSpec tunedSpec = core::generateClone(
        base.profile, base.skeleton, {}, nameMap, tuned.config);
    const RunResult tunedRun =
        runSingleTier(tunedSpec, cloneLoad, platform);
    table.addRow({"I:Tune", cell(tunedRun.report.ipc, 3),
                  cell(tunedRun.report.instructionsPerRequest, 0),
                  cell(tunedRun.report.cyclesPerRequest, 0),
                  cell(tunedRun.report.p99LatencyMs, 3)});

    table.print(std::cout);
    std::cout << "\nFine tuning took " << tuned.iterations
              << " iterations (paper: converges within ten); final "
                 "IPC error "
              << stats::formatPercent(tuned.finalIpcError, 1) << "\n";
    return 0;
}
