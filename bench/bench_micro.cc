/**
 * @file
 * Substrate micro-benchmarks (google-benchmark): throughput of the
 * building blocks every experiment rests on -- event queue, cache
 * simulation, branch predictor, block interpretation with and
 * without replay acceleration, stack-distance profiling, and
 * end-to-end simulated-requests-per-host-second.
 */

#include <benchmark/benchmark.h>

#include "app/deployment.h"
#include "hw/block_builder.h"
#include "hw/cpu_core.h"
#include "hw/platform.h"
#include "profile/stack_distance.h"
#include "sim/event_queue.h"
#include "workload/loadgen.h"

using namespace ditto;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < 1000; ++i)
            q.scheduleAt(static_cast<sim::Time>(i * 7 % 997), [] {});
        benchmark::DoNotOptimize(q.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CacheAccess(benchmark::State &state)
{
    hw::Cache cache(static_cast<std::uint64_t>(state.range(0)), 8);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(32 << 10)->Arg(1 << 20)->Arg(30 << 20);

static void
BM_BranchPredictor(benchmark::State &state)
{
    hw::BranchPredictor bp(14, 12);
    hw::BranchDesc desc{3, 4};
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predictAndUpdate(
            0x1000 + (i % 64) * 4,
            hw::BranchPattern::direction(desc, i)));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

static void
BM_StackDistance(benchmark::State &state)
{
    profile::StackDistanceCurve curve;
    sim::Rng rng(1);
    for (auto _ : state)
        curve.access(rng.uniformInt(std::uint64_t{1} << 16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistance);

static void
BM_BlockInterpret(benchmark::State &state)
{
    const bool exact = state.range(0) != 0;
    hw::PlatformSpec spec = hw::platformA();
    hw::Cache llc(spec.llcBytes, spec.llcWays);
    hw::CacheHierarchy caches(spec.l1iBytes, spec.l1iWays,
                              spec.l1dBytes, spec.l1dWays,
                              spec.l2Bytes, spec.l2Ways, &llc, true);
    hw::CpuCore core(0, spec, caches, nullptr);
    core.setExactMode(exact);
    hw::ExecContext ctx(0, 1);
    hw::CodeImage image(0x400000, 0x10000000, 4);
    hw::BlockSpec bs;
    bs.label = "bench";
    bs.instCount = 256;
    bs.memFraction = 0.3;
    bs.branchFraction = 0.1;
    bs.streams = {{256 << 10, hw::StreamKind::Sequential, false, 1.0}};
    bs.seed = 1;
    const auto block = image.addBlock(hw::buildBlock(bs));

    hw::ExecStats stats;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core.run(image, block, 4, ctx, stats));
    state.SetItemsProcessed(state.iterations() * 4 * 256);
    state.SetLabel(exact ? "exact" : "replay");
}
BENCHMARK(BM_BlockInterpret)->Arg(1)->Arg(0);

static void
BM_EndToEndRequests(benchmark::State &state)
{
    // Simulated requests per host second through the full stack.
    for (auto _ : state) {
        app::Deployment dep(1);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        app::ServiceSpec spec;
        spec.name = "micro";
        spec.threads.workers = 2;
        hw::BlockSpec bs;
        bs.label = "micro.h";
        bs.instCount = 128;
        bs.seed = 2;
        spec.blocks.push_back(hw::buildBlock(bs));
        app::EndpointSpec ep;
        ep.name = "op";
        ep.handler.ops = {app::opCompute(0, 20)};
        spec.endpoints.push_back(ep);
        app::ServiceInstance &svc = dep.deploy(spec, m);
        dep.wireAll();
        workload::LoadSpec load;
        load.qps = 5000;
        load.connections = 4;
        workload::LoadGen gen(dep, svc, load, 3);
        gen.start();
        dep.runFor(sim::milliseconds(100));
        benchmark::DoNotOptimize(gen.completed());
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(gen.completed()));
    }
}
BENCHMARK(BM_EndToEndRequests)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
