/**
 * @file
 * Substrate micro-benchmarks (google-benchmark): throughput of the
 * building blocks every experiment rests on -- event queue, cache
 * simulation, branch predictor, block interpretation with and
 * without replay acceleration, stack-distance profiling, and
 * end-to-end simulated-requests-per-host-second.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "core/slab_arena.h"
#include "hw/block_builder.h"
#include "hw/cpu_core.h"
#include "hw/platform.h"
#include "obs/jaeger.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "profile/stack_distance.h"
#include "sim/event_queue.h"
#include "sim/run_executor.h"
#include "workload/loadgen.h"

using namespace ditto;

static void
BM_EventQueueScheduleRun(benchmark::State &state,
                         sim::EventQueue::Backend backend)
{
    for (auto _ : state) {
        sim::EventQueue q(backend);
        for (int i = 0; i < 1000; ++i)
            q.scheduleAt(static_cast<sim::Time>(i * 7 % 997), [] {});
        benchmark::DoNotOptimize(q.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, wheel,
                  sim::EventQueue::Backend::Wheel);
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, heap,
                  sim::EventQueue::Backend::Heap);

static void
BM_EventQueueCancelHeavy(benchmark::State &state,
                         sim::EventQueue::Backend backend)
{
    // RPC-deadline shape: N timeouts pending far in the future while
    // every one of them is cancelled (the request "completed").
    // Cancellation is O(1) tombstoning, so per-item cost must stay
    // flat as the pending population grows (used to be an O(n) scan,
    // i.e. O(n^2) for the loop below).
    const auto pending = static_cast<int>(state.range(0));
    std::vector<sim::EventId> ids(
        static_cast<std::size_t>(pending));
    for (auto _ : state) {
        state.PauseTiming();
        sim::EventQueue q(backend);
        for (int i = 0; i < pending; ++i)
            ids[static_cast<std::size_t>(i)] = q.scheduleAt(
                static_cast<sim::Time>(1000000 + i), [] {});
        state.ResumeTiming();
        for (int i = 0; i < pending; ++i)
            benchmark::DoNotOptimize(
                q.cancel(ids[static_cast<std::size_t>(i)]));
    }
    state.SetItemsProcessed(state.iterations() * pending);
    state.SetComplexityN(pending);
}
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, wheel,
                  sim::EventQueue::Backend::Wheel)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, heap,
                  sim::EventQueue::Backend::Heap)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

static void
BM_EventQueueTimeoutPattern(benchmark::State &state,
                            sim::EventQueue::Backend backend)
{
    // Mixed steady-state: each simulated request schedules completion
    // plus a timeout, the completion fires and cancels the timeout --
    // the dominant schedule/cancel pattern of the RPC layer.
    for (auto _ : state) {
        sim::EventQueue q(backend);
        for (int i = 0; i < 1000; ++i) {
            const auto now = static_cast<sim::Time>(i * 3);
            const sim::EventId timeout = q.scheduleAt(
                now + 5000, [] {});
            q.scheduleAt(now + 2, [&q, timeout] {
                q.cancel(timeout);
            });
        }
        benchmark::DoNotOptimize(q.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueTimeoutPattern, wheel,
                  sim::EventQueue::Backend::Wheel);
BENCHMARK_CAPTURE(BM_EventQueueTimeoutPattern, heap,
                  sim::EventQueue::Backend::Heap);

namespace {

/** Stand-in for os::Message-sized per-RPC hot allocations. */
struct FlightSized
{
    unsigned char payload[96];
    std::uint64_t id;
};

} // namespace

static void
BM_InFlightAllocNew(benchmark::State &state)
{
    // In-flight message churn via the general-purpose allocator: a
    // ring of live nodes (like messages on the wire), each iteration
    // retires the oldest and allocates a replacement.
    constexpr std::size_t kRing = 256;
    std::vector<FlightSized *> ring(kRing, nullptr);
    std::size_t head = 0;
    std::uint64_t id = 0;
    for (auto _ : state) {
        delete ring[head];
        ring[head] = new FlightSized{{}, id++};
        benchmark::DoNotOptimize(ring[head]);
        head = (head + 1) % kRing;
    }
    for (FlightSized *f : ring)
        delete f;
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InFlightAllocNew);

static void
BM_InFlightAllocSlab(benchmark::State &state)
{
    // Same churn through core::SlabArena -- the network layer's
    // in-flight pool: freed nodes are recycled from the free list, so
    // steady state touches no allocator locks and stays cache-hot.
    constexpr std::size_t kRing = 256;
    core::SlabArena<FlightSized> arena;
    std::vector<FlightSized *> ring(kRing, nullptr);
    std::size_t head = 0;
    std::uint64_t id = 0;
    for (auto _ : state) {
        if (ring[head])
            arena.destroy(ring[head]);
        ring[head] = arena.create(FlightSized{{}, id++});
        benchmark::DoNotOptimize(ring[head]);
        head = (head + 1) % kRing;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InFlightAllocSlab);

static void
BM_RunExecutorDispatch(benchmark::State &state)
{
    // Pure submit/join overhead per (trivial) run, serial vs pooled.
    sim::RunExecutor ex(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        std::vector<std::function<int()>> tasks;
        tasks.reserve(64);
        for (int i = 0; i < 64; ++i)
            tasks.push_back([i] { return i; });
        benchmark::DoNotOptimize(
            ex.runOrdered<int>(std::move(tasks)));
    }
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel("jobs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RunExecutorDispatch)->Arg(1)->Arg(4);

static void
BM_CacheAccess(benchmark::State &state)
{
    hw::Cache cache(static_cast<std::uint64_t>(state.range(0)), 8);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(32 << 10)->Arg(1 << 20)->Arg(30 << 20);

static void
BM_BranchPredictor(benchmark::State &state)
{
    hw::BranchPredictor bp(14, 12);
    hw::BranchDesc desc{3, 4};
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predictAndUpdate(
            0x1000 + (i % 64) * 4,
            hw::BranchPattern::direction(desc, i)));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

static void
BM_StackDistance(benchmark::State &state)
{
    profile::StackDistanceCurve curve;
    sim::Rng rng(1);
    for (auto _ : state)
        curve.access(rng.uniformInt(std::uint64_t{1} << 16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistance);

static void
BM_BlockInterpret(benchmark::State &state)
{
    const bool exact = state.range(0) != 0;
    hw::PlatformSpec spec = hw::platformA();
    hw::Cache llc(spec.llcBytes, spec.llcWays);
    hw::CacheHierarchy caches(spec.l1iBytes, spec.l1iWays,
                              spec.l1dBytes, spec.l1dWays,
                              spec.l2Bytes, spec.l2Ways, &llc, true);
    hw::CpuCore core(0, spec, caches, nullptr);
    core.setExactMode(exact);
    hw::ExecContext ctx(0, 1);
    hw::CodeImage image(0x400000, 0x10000000, 4);
    hw::BlockSpec bs;
    bs.label = "bench";
    bs.instCount = 256;
    bs.memFraction = 0.3;
    bs.branchFraction = 0.1;
    bs.streams = {{256 << 10, hw::StreamKind::Sequential, false, 1.0}};
    bs.seed = 1;
    const auto block = image.addBlock(hw::buildBlock(bs));

    hw::ExecStats stats;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core.run(image, block, 4, ctx, stats));
    state.SetItemsProcessed(state.iterations() * 4 * 256);
    state.SetLabel(exact ? "exact" : "replay");
}
BENCHMARK(BM_BlockInterpret)->Arg(1)->Arg(0);

static void
BM_EndToEndRequests(benchmark::State &state)
{
    // Simulated requests per host second through the full stack.
    for (auto _ : state) {
        app::Deployment dep(1);
        os::Machine &m = dep.addMachine("n", hw::platformA());
        app::ServiceSpec spec;
        spec.name = "micro";
        spec.threads.workers = 2;
        hw::BlockSpec bs;
        bs.label = "micro.h";
        bs.instCount = 128;
        bs.seed = 2;
        spec.blocks.push_back(hw::buildBlock(bs));
        app::EndpointSpec ep;
        ep.name = "op";
        ep.handler.ops = {app::opCompute(0, 20)};
        spec.endpoints.push_back(ep);
        app::ServiceInstance &svc = dep.deploy(spec, m);
        dep.wireAll();
        workload::LoadSpec load;
        load.qps = 5000;
        load.connections = 4;
        workload::LoadGen gen(dep, svc, load, 3);
        gen.start();
        dep.runFor(sim::milliseconds(100));
        benchmark::DoNotOptimize(gen.completed());
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(gen.completed()));
    }
}
BENCHMARK(BM_EndToEndRequests)->Unit(benchmark::kMillisecond);

static void
BM_JaegerExportImport(benchmark::State &state)
{
    // Cost of the observability round trip (export to Jaeger JSON,
    // parse it back) per recorded span. Runs offline relative to the
    // simulation, but bounds how often a long-running harness can
    // afford to snapshot traces.
    app::Deployment dep(9);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec;
    spec.name = "micro";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "micro.h";
    bs.instCount = 128;
    bs.seed = 2;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "op";
    ep.handler.ops = {app::opCompute(0, 20)};
    spec.endpoints.push_back(ep);
    app::ServiceInstance &svc = dep.deploy(spec, m);
    dep.wireAll();
    workload::LoadSpec load;
    load.qps = 5000;
    load.connections = 4;
    workload::LoadGen gen(dep, svc, load, 3);
    gen.start();
    dep.runFor(sim::milliseconds(100));

    for (auto _ : state) {
        const std::string json = obs::exportJaegerJson(dep.tracer());
        const trace::Tracer back = obs::importJaegerJson(json);
        benchmark::DoNotOptimize(back.spans().size());
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(dep.tracer().spans().size()));
    }
}
BENCHMARK(BM_JaegerExportImport)->Unit(benchmark::kMillisecond);

static void
BM_MetricsSnapshot(benchmark::State &state)
{
    // Prometheus-text snapshot of a fully registered deployment.
    app::Deployment dep(9);
    os::Machine &m = dep.addMachine("n", hw::platformA());
    app::ServiceSpec spec;
    spec.name = "micro";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "micro.h";
    bs.instCount = 128;
    bs.seed = 2;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "op";
    ep.handler.ops = {app::opCompute(0, 20)};
    spec.endpoints.push_back(ep);
    app::ServiceInstance &svc = dep.deploy(spec, m);
    dep.wireAll();
    workload::LoadSpec load;
    load.qps = 5000;
    load.connections = 4;
    workload::LoadGen gen(dep, svc, load, 3);
    gen.start();
    dep.runFor(sim::milliseconds(100));

    obs::MetricsRegistry registry;
    obs::registerDeploymentMetrics(registry, dep);
    for (auto _ : state) {
        const std::string text = registry.prometheusText();
        benchmark::DoNotOptimize(text.size());
    }
}
BENCHMARK(BM_MetricsSnapshot);

BENCHMARK_MAIN();
