/**
 * @file
 * Shared harness for the figure/table reproduction benchmarks.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it deploys originals, clones them with Ditto, re-deploys the
 * clones, measures both under identical load, and prints the same
 * rows/series the paper plots. Absolute numbers come from the machine
 * model, not the authors' Xeons; the *shape* (who wins, crossovers,
 * relative degradations) is the reproduction target (see
 * EXPERIMENTS.md).
 */

#ifndef DITTO_BENCH_BENCH_COMMON_H_
#define DITTO_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "core/ditto.h"
#include "profile/perf_report.h"
#include "sim/run_executor.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace ditto::bench {

/**
 * Per-bench harness: resolves the worker count (`--jobs N` /
 * `DITTO_JOBS`, default hardware_concurrency), owns the RunExecutor
 * the bench fans its independent simulation runs out on, and tracks
 * wall-clock time. finish() prints the wall-clock to stderr (stdout
 * stays byte-identical across worker counts) and merges the timing
 * into BENCH_pipeline.json so the perf trajectory is trackable
 * across changes.
 */
class BenchRuntime
{
  public:
    BenchRuntime(int argc, char **argv, std::string name);
    ~BenchRuntime();

    BenchRuntime(const BenchRuntime &) = delete;
    BenchRuntime &operator=(const BenchRuntime &) = delete;

    sim::RunExecutor &executor() { return *executor_; }
    unsigned jobs() const { return executor_->jobs(); }

    /** Report wall-clock and write BENCH_pipeline.json (idempotent). */
    void finish();

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<sim::RunExecutor> executor_;
    bool finished_ = false;
};

/**
 * Merge one bench's timing into BENCH_pipeline.json in the current
 * directory: `{"bench": {"wall_seconds": s, "jobs": n}, ...}`,
 * preserving other benches' entries.
 */
void recordBenchTiming(const std::string &name, double wallSeconds,
                       unsigned jobs);

/**
 * Merge one named entry (a one-line JSON object) into
 * BENCH_pipeline.json, preserving every other entry. Benches use it
 * to publish result summaries -- e.g. per-outcome request mixes --
 * next to their timings.
 */
void recordBenchEntry(const std::string &name,
                      const std::string &json);

/** One single-tier application under test. */
struct AppCase
{
    std::string name;
    app::ServiceSpec spec;
    apps::AppLoad load;
};

/** The paper's four single-tier applications. */
std::vector<AppCase> singleTierApps();

/** Result of one measured run. */
struct RunResult
{
    profile::PerfReport report;
    stats::LatencyHistogram clientLatency;
    double achievedQps = 0;
};

/** Deploy + drive one single-tier service and measure a window. */
RunResult runSingleTier(const app::ServiceSpec &spec,
                        const workload::LoadSpec &load,
                        const hw::PlatformSpec &platform,
                        sim::Time warm = sim::milliseconds(200),
                        sim::Time measure = sim::milliseconds(300),
                        std::uint64_t seed = 77);

/** Result of one Social Network run: per-tier reports + e2e latency. */
struct SnRunResult
{
    std::map<std::string, profile::PerfReport> tiers;
    stats::LatencyHistogram clientLatency;
    double achievedQps = 0;
};

/**
 * Deploy + drive a Social Network (original tier specs or clones)
 * and measure per-tier counters plus end-to-end latency.
 */
SnRunResult runSocialNetwork(const std::vector<app::ServiceSpec> &tiers,
                             const std::string &rootName,
                             const workload::LoadSpec &load,
                             const hw::PlatformSpec &platform,
                             sim::Time warm = sim::milliseconds(250),
                             sim::Time measure = sim::milliseconds(300),
                             std::uint64_t seed = 78);

/**
 * Profile + clone one single-tier app at its medium load. With an
 * executor, fine-tune candidates are evaluated concurrently (results
 * independent of the worker count).
 */
core::CloneResult cloneSingleTier(const AppCase &app, bool fineTune,
                                  std::uint64_t seed = 79,
                                  sim::RunExecutor *executor = nullptr);

/** Clone the whole Social Network (profiled at medium load). */
core::TopologyCloneResult
cloneSocialNetwork(std::uint64_t seed = 80,
                   sim::RunExecutor *executor = nullptr);

/** The Social Network load spec translated for the cloned tiers. */
workload::LoadSpec socialCloneLoad(double qps);

/** Format helper: "0.873" style metric cell. */
std::string cell(double v, int precision = 3);

/** Add the standard Fig. 5/7 metric rows for one (orig, synth) pair. */
void addMetricRows(stats::TablePrinter &table, const std::string &tag,
                   const profile::PerfReport &orig,
                   const profile::PerfReport &synth);

/** Track per-metric relative errors for the Sec. 6.2.1 summary. */
class ErrorAccumulator
{
  public:
    void add(const profile::PerfReport &orig,
             const profile::PerfReport &synth);

    /** Print the avg-error summary table. */
    void print(std::ostream &os) const;

  private:
    std::map<std::string, std::pair<double, int>> sums_;
    void record(const std::string &metric, double orig, double synth,
                double denomFloor);
};

} // namespace ditto::bench

#endif // DITTO_BENCH_BENCH_COMMON_H_
