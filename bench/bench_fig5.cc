/**
 * @file
 * Fig. 5: CPU performance metrics (IPC, branch misprediction,
 * L1i/L1d/L2/LLC miss rates), network bandwidth, disk bandwidth
 * (MongoDB), and avg/p95/p99 latency under low/medium/high load for
 * six services -- original vs Ditto clone, on Platform A.
 *
 * Clones are generated from a single profiling run at medium load
 * (the paper profiles only medium load); low/high-load behaviour is
 * the clone reacting, not re-profiling.
 */

#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void
latencyRow(stats::TablePrinter &table, const std::string &tag,
           const RunResult &orig, const RunResult &synth)
{
    table.addRow(
        {tag,
         cell(sim::toMilliseconds(orig.clientLatency.mean()), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      orig.clientLatency.percentile(0.95)), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      orig.clientLatency.percentile(0.99)), 3),
         cell(sim::toMilliseconds(synth.clientLatency.mean()), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      synth.clientLatency.percentile(0.95)), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      synth.clientLatency.percentile(0.99)), 3)});
}

} // namespace

int
main()
{
    const hw::PlatformSpec platform = hw::platformA();
    ErrorAccumulator errors;

    stats::printBanner(
        std::cout,
        "Fig. 5: original vs synthetic under varying load "
        "(Platform A; profiled at medium load only)");

    // ---- the four single-tier applications -----------------------------
    for (const AppCase &app : singleTierApps()) {
        std::cout << "\n-- " << app.name
                  << ": profiling + cloning at medium load...\n";
        const core::CloneResult clone = cloneSingleTier(app, true);
        std::cout << "   fine tuning: " << clone.tuning.iterations
                  << " iterations, final IPC error "
                  << stats::formatPercent(clone.tuning.finalIpcError,
                                          1)
                  << "\n";

        stats::TablePrinter table(
            {"load", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"load", "actual avg/p95/p99 (ms)",
             "synthetic avg/p95/p99 (ms)"});

        const struct
        {
            const char *tag;
            double qps;
        } loads[] = {{"low", app.load.lowQps},
                     {"medium", app.load.mediumQps},
                     {"high", app.load.highQps}};

        for (const auto &[tag, qps] : loads) {
            const RunResult orig = runSingleTier(
                app.spec, app.load.at(qps), platform);
            const RunResult synth = runSingleTier(
                clone.spec, core::cloneLoadSpec(app.load.at(qps)),
                platform);
            addMetricRows(table, tag, orig.report, synth.report);
            table.addSeparator();
            latencyRow(latTable, tag, orig, synth);
            errors.add(orig.report, synth.report);
        }
        stats::printBanner(std::cout, app.name + " (Fig. 5 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    // ---- TextService and SocialGraphService (Social Network tiers) ----
    std::cout << "\n-- Social Network: profiling + cloning the "
                 "topology at medium load...\n";
    const core::TopologyCloneResult snClone = cloneSocialNetwork();
    std::cout << "   cloned " << snClone.specs.size() << " tiers; root "
              << snClone.rootClone << "\n";

    const auto snLoad = apps::socialNetworkLoad();
    const struct
    {
        const char *tag;
        double qps;
    } snLoads[] = {{"low", snLoad.lowQps},
                   {"medium", snLoad.mediumQps},
                   {"high", snLoad.highQps}};

    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        stats::TablePrinter table(
            {"load", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"load", "actual avg/p95/p99 (ms)",
             "synthetic avg/p95/p99 (ms)"});

        for (const auto &[tag, qps] : snLoads) {
            const SnRunResult orig = runSocialNetwork(
                apps::socialNetworkSpecs(),
                apps::socialNetworkFrontend(), snLoad.at(qps),
                platform);
            const SnRunResult synth = runSocialNetwork(
                snClone.specs, snClone.rootClone,
                socialCloneLoad(qps), platform);
            const auto &o = orig.tiers.at(tier);
            const auto &s = synth.tiers.at(std::string(tier) +
                                           "_clone");
            addMetricRows(table, tag, o, s);
            table.addSeparator();
            latTable.addRow(
                {tag,
                 cell(o.avgLatencyMs, 3) + " / " +
                     cell(o.p95LatencyMs, 3) + " / " +
                     cell(o.p99LatencyMs, 3),
                 cell(s.avgLatencyMs, 3) + " / " +
                     cell(s.p95LatencyMs, 3) + " / " +
                     cell(s.p99LatencyMs, 3)});
            errors.add(o, s);
        }
        stats::printBanner(std::cout, pretty + " (Fig. 5 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    errors.print(std::cout);
    return 0;
}
