/**
 * @file
 * Fig. 5: CPU performance metrics (IPC, branch misprediction,
 * L1i/L1d/L2/LLC miss rates), network bandwidth, disk bandwidth
 * (MongoDB), and avg/p95/p99 latency under low/medium/high load for
 * six services -- original vs Ditto clone, on Platform A.
 *
 * Clones are generated from a single profiling run at medium load
 * (the paper profiles only medium load); low/high-load behaviour is
 * the clone reacting, not re-profiling.
 *
 * Execution is phased for parallelism: every clone, then every
 * measured run, is an independent seeded simulation fanned out on
 * the RunExecutor (`--jobs N` / DITTO_JOBS); results are joined in
 * submission order, so the tables below are byte-identical at any
 * worker count. The three Social Network runs per load level are
 * computed once and reused for both reported tiers (identical by
 * determinism to running them per tier).
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void
latencyRow(stats::TablePrinter &table, const std::string &tag,
           const RunResult &orig, const RunResult &synth)
{
    table.addRow(
        {tag,
         cell(sim::toMilliseconds(orig.clientLatency.mean()), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      orig.clientLatency.percentile(0.95)), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      orig.clientLatency.percentile(0.99)), 3),
         cell(sim::toMilliseconds(synth.clientLatency.mean()), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      synth.clientLatency.percentile(0.95)), 3) +
             " / " +
             cell(sim::toMilliseconds(
                      synth.clientLatency.percentile(0.99)), 3)});
}

struct LoadLevel
{
    const char *tag;
    double qps;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig5");
    sim::RunExecutor &ex = rt.executor();
    const hw::PlatformSpec platform = hw::platformA();
    ErrorAccumulator errors;

    stats::printBanner(
        std::cout,
        "Fig. 5: original vs synthetic under varying load "
        "(Platform A; profiled at medium load only)");

    // ---- phase 1: clone everything (independent seeded pipelines) ----
    std::cout << "\nprofiling + cloning the four single-tier apps and "
                 "the social network...\n";
    const std::vector<AppCase> apps = singleTierApps();

    auto snFuture =
        ex.submit([&ex] { return cloneSocialNetwork(80, &ex); });
    std::vector<std::function<core::CloneResult()>> cloneTasks;
    for (const AppCase &app : apps) {
        cloneTasks.push_back(
            [&app, &ex] { return cloneSingleTier(app, true, 79, &ex); });
    }
    const std::vector<core::CloneResult> clones =
        ex.runOrdered<core::CloneResult>(std::move(cloneTasks));
    const core::TopologyCloneResult snClone =
        ex.collect(std::move(snFuture));

    // ---- phase 2: all measured runs -----------------------------------
    const LoadLevel loads[3] = {{"low", 0}, {"medium", 0}, {"high", 0}};
    std::vector<std::function<RunResult()>> runTasks;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppCase &app = apps[i];
        const core::CloneResult &clone = clones[i];
        const double qpsLevels[3] = {app.load.lowQps, app.load.mediumQps,
                                     app.load.highQps};
        for (double qps : qpsLevels) {
            runTasks.push_back([&app, qps, &platform] {
                return runSingleTier(app.spec, app.load.at(qps),
                                     platform);
            });
            runTasks.push_back([&app, &clone, qps, &platform] {
                return runSingleTier(
                    clone.spec, core::cloneLoadSpec(app.load.at(qps)),
                    platform);
            });
        }
    }

    const auto snLoad = apps::socialNetworkLoad();
    const LoadLevel snLoads[] = {{"low", snLoad.lowQps},
                                 {"medium", snLoad.mediumQps},
                                 {"high", snLoad.highQps}};
    std::vector<std::function<SnRunResult()>> snTasks;
    for (const LoadLevel &level : snLoads) {
        const double qps = level.qps;
        snTasks.push_back([qps, &snLoad, &platform] {
            return runSocialNetwork(apps::socialNetworkSpecs(),
                                    apps::socialNetworkFrontend(),
                                    snLoad.at(qps), platform);
        });
        snTasks.push_back([qps, &snClone, &platform] {
            return runSocialNetwork(snClone.specs, snClone.rootClone,
                                    socialCloneLoad(qps), platform);
        });
    }

    auto snRunsFuture = ex.submit(
        [&ex, &snTasks]() -> std::vector<SnRunResult> {
            return ex.runOrdered<SnRunResult>(std::move(snTasks));
        });
    const std::vector<RunResult> runs =
        ex.runOrdered<RunResult>(std::move(runTasks));
    const std::vector<SnRunResult> snRuns =
        ex.collect(std::move(snRunsFuture));

    // ---- phase 3: tables, in the original order -----------------------
    std::size_t runIdx = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppCase &app = apps[i];
        const core::CloneResult &clone = clones[i];
        std::cout << "\n-- " << app.name
                  << ": profiled + cloned at medium load\n";
        std::cout << "   fine tuning: " << clone.tuning.iterations
                  << " iterations, final IPC error "
                  << stats::formatPercent(clone.tuning.finalIpcError,
                                          1)
                  << "\n";

        stats::TablePrinter table(
            {"load", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"load", "actual avg/p95/p99 (ms)",
             "synthetic avg/p95/p99 (ms)"});

        for (const LoadLevel &level : loads) {
            const RunResult &orig = runs[runIdx++];
            const RunResult &synth = runs[runIdx++];
            addMetricRows(table, level.tag, orig.report, synth.report);
            table.addSeparator();
            latencyRow(latTable, level.tag, orig, synth);
            errors.add(orig.report, synth.report);
        }
        stats::printBanner(std::cout, app.name + " (Fig. 5 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    std::cout << "\n-- Social Network: cloned " << snClone.specs.size()
              << " tiers; root " << snClone.rootClone << "\n";

    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        stats::TablePrinter table(
            {"load", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"load", "actual avg/p95/p99 (ms)",
             "synthetic avg/p95/p99 (ms)"});

        for (std::size_t l = 0; l < 3; ++l) {
            const SnRunResult &orig = snRuns[2 * l];
            const SnRunResult &synth = snRuns[2 * l + 1];
            const auto &o = orig.tiers.at(tier);
            const auto &s = synth.tiers.at(std::string(tier) +
                                           "_clone");
            addMetricRows(table, snLoads[l].tag, o, s);
            table.addSeparator();
            latTable.addRow(
                {snLoads[l].tag,
                 cell(o.avgLatencyMs, 3) + " / " +
                     cell(o.p95LatencyMs, 3) + " / " +
                     cell(o.p99LatencyMs, 3),
                 cell(s.avgLatencyMs, 3) + " / " +
                     cell(s.p95LatencyMs, 3) + " / " +
                     cell(s.p99LatencyMs, 3)});
            errors.add(o, s);
        }
        stats::printBanner(std::cout, pretty + " (Fig. 5 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    errors.print(std::cout);
    return 0;
}
