/**
 * @file
 * Overload-control capstone: the saturation knee with vs without
 * adaptive overload control, and a metastable-failure demonstration.
 *
 * Part A sweeps offered load from 0.4x to 1.6x of a calculable
 * capacity (2 workers / 0.5 ms service time = 4k calls/s) against the
 * same service twice: `base` (no overload control) and `ctrl`
 * (adaptive AIMD concurrency limit + CoDel-style sojourn cap). Below
 * the knee the two are indistinguishable; past it the controlled
 * service keeps serving work it can finish within the deadline while
 * the uncontrolled one burns capacity on doomed queue depth.
 *
 * Part B is the Bronson et al. metastable-failure scenario: offered
 * load at 0.8x capacity (stable), a 30 ms crash window, and
 * deadline-spaced client retries (4 attempts). Without a retry
 * budget, the retry wave born in the fault window pushes effective
 * load to ~4x offered; queue sojourn exceeds the client timeout, so
 * *fresh* traffic starts failing and retrying too -- the collapse
 * sustains itself long after the fault cleared (goodput pinned near
 * zero). With a 10% retry budget the wave is bounded and goodput
 * recovers within a couple of windows. Post-clear goodput fractions
 * and the recovery time go to BENCH_pipeline.json
 * (`overload_metastable`; `*_goodput*` higher-is-better,
 * `*_recovery_ms` lower-is-better in check_bench_regression.py).
 *
 * Runs fan out on the RunExecutor; all stdout is printed after the
 * ordered join, so output is byte-identical at any --jobs.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "app/deployment.h"
#include "bench/bench_common.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "workload/engine.h"

using namespace ditto;

namespace {

/** Nominal capacity (calls/second): 2 workers x 500us sleep. */
constexpr double kCapacityQps = 4000;

/** Part A sweep: 0.4x .. 1.6x capacity. */
constexpr double kFactors[] = {0.4, 0.6, 0.8, 1.0,
                               1.2, 1.4, 1.6};

/** End-to-end deadline; goodput counts Ok answers under it. */
constexpr sim::Time kDeadline = sim::milliseconds(10);

app::ServiceSpec
apiSpec(bool controlled)
{
    app::ServiceSpec spec;
    spec.name = "api";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "api.h";
    bs.instCount = 64;
    bs.seed = 7;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "get";
    ep.handler.ops = {app::opSleep(sim::microseconds(500))};
    ep.responseBytesMin = ep.responseBytesMax = 256;
    spec.endpoints.push_back(ep);
    if (controlled) {
        app::OverloadSpec &ov = spec.resilience.overload;
        ov.enabled = true;
        ov.initialLimit = 64;
        ov.minLimit = 8;
        ov.window = 64;
        ov.latencyRatio = 3.0;
        // Queue sojourn past half the deadline is work the client
        // will almost surely discard: shed it at dequeue.
        ov.maxSojourn = kDeadline / 2;
    }
    return spec;
}

/**
 * Sweep-point client: ramp from ~0.4x capacity up to the target over
 * 50 ms so the AIMD baseline learns the uncongested latency before
 * the offered load reaches the point under test.
 */
workload::WorkloadSpec
sweepSpec(double factor)
{
    workload::WorkloadSpec ws;
    const double target = kCapacityQps * factor;
    ws.sessionsPerSec = target /
        ((ws.session.minCalls + ws.session.maxCalls) / 2.0);
    ws.connections = 16;
    ws.session.meanThink = sim::milliseconds(1);
    ws.shape.kind = workload::ShapeKind::Ramp;
    ws.shape.startFactor = 0.4 / factor;
    ws.shape.endFactor = 1.0;
    ws.shape.rampDuration = sim::milliseconds(50);
    ws.classes[0].slo.deadline = kDeadline;
    ws.timeout = kDeadline;
    return ws;
}

struct SweepRow
{
    double targetQps = 0;
    double offeredQps = 0;
    double goodputQps = 0;
    double p99Ms = 0;
    std::uint64_t sheds = 0;
};

SweepRow
runSweepCase(double factor, bool controlled)
{
    app::Deployment dep(2027, /*traceSampleRate=*/0.01);
    os::Machine &m = dep.addMachine("api-m", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(apiSpec(controlled), m);
    dep.wireAll();

    workload::WorkloadEngine eng(dep, svc, sweepSpec(factor), 13);
    eng.start();
    dep.runFor(sim::milliseconds(100));  // ramp + settle
    eng.beginMeasure();
    dep.runFor(sim::milliseconds(300));

    const workload::SloReport slo = eng.sloReport();
    SweepRow row;
    row.targetQps = kCapacityQps * factor;
    row.offeredQps = slo.offeredQps;
    row.goodputQps = slo.goodputQps;
    row.p99Ms =
        static_cast<double>(eng.latency().percentile(0.99)) / 1e6;
    row.sheds = svc.stats().requestsShed;
    return row;
}

// ---------------------------------------------------------------------------
// Part B: metastability
// ---------------------------------------------------------------------------

/**
 * Fault timeline: load settles, crash window, observed tail. The
 * crash must run long enough that the sessions accumulating in
 * timeout/backoff chains fire a post-clear retry burst that pushes
 * queue sojourn past the deadline -- that breach is what arms the
 * fresh-traffic-times-out-and-retries feedback loop.
 */
constexpr sim::Time kCrashAt = sim::milliseconds(100);
constexpr sim::Time kCrashFor = sim::milliseconds(60);
constexpr sim::Time kWindow = sim::milliseconds(25);
constexpr unsigned kPostWindows = 16;

struct MetaRow
{
    double offeredQps = 0;      //!< fresh offered rate (pre-fault)
    double steadyFrac = 0;      //!< goodput frac before the fault
    std::vector<double> fracs;  //!< per-window post-clear frac
    double tailFrac = 0;        //!< aggregate from clear to horizon
    double recoveryMs = -1;     //!< first window at >= 95%, -1 never
    std::uint64_t retries = 0;
    std::uint64_t suppressed = 0;
};

MetaRow
runMetastable(bool budgeted)
{
    app::Deployment dep(2028, /*traceSampleRate=*/0.01);
    os::Machine &m = dep.addMachine("api-m", hw::platformA());
    app::ServiceInstance &svc =
        dep.deploy(apiSpec(/*controlled=*/false), m);
    dep.wireAll();

    workload::WorkloadSpec ws;
    ws.sessionsPerSec = kCapacityQps * 0.8 /
        ((ws.session.minCalls + ws.session.maxCalls) / 2.0);
    ws.connections = 16;
    // A longer think time means more concurrent sessions carry the
    // same call rate, so more retry chains straddle the fault window
    // -- a bigger synchronized burst at clear.
    ws.session.meanThink = sim::milliseconds(5);
    ws.classes[0].slo.deadline = kDeadline;
    ws.timeout = kDeadline;
    // Deadline-spaced client retries: the storm fuel. The ONLY
    // difference between the two variants is the budget.
    ws.retry.maxAttempts = 4;
    ws.retry.backoff = sim::microseconds(200);
    if (budgeted) {
        ws.retry.budgetRatio = 0.1;
        ws.retry.budgetInitial = 5;
        ws.retry.budgetCap = 20;
    }
    workload::WorkloadEngine eng(dep, svc, ws, 19);

    fault::FaultPlan plan;
    plan.serviceCrash("api", kCrashAt, kCrashFor);
    fault::FaultInjector injector(dep);
    injector.install(plan);

    eng.start();
    MetaRow row;
    // Steady window before the fault (offered 0.8x: must be happy).
    dep.runFor(sim::milliseconds(50));
    std::uint64_t sent0 = eng.classSent(0);
    std::uint64_t ok0 = eng.classOkInDeadline(0);
    dep.runFor(kCrashAt - sim::milliseconds(50));
    row.offeredQps = static_cast<double>(eng.classSent(0) - sent0) /
        ((static_cast<double>(kCrashAt) -
          static_cast<double>(sim::milliseconds(50))) /
         1e9);
    row.steadyFrac = eng.classSent(0) == sent0
        ? 0.0
        : static_cast<double>(eng.classOkInDeadline(0) - ok0) /
            static_cast<double>(eng.classSent(0) - sent0);

    // Ride through the crash window.
    dep.runFor(kCrashFor);

    // Post-clear windows: the metastability verdict.
    std::uint64_t prevSent = eng.classSent(0);
    std::uint64_t prevOk = eng.classOkInDeadline(0);
    const std::uint64_t clearSent = prevSent;
    const std::uint64_t clearOk = prevOk;
    for (unsigned w = 0; w < kPostWindows; ++w) {
        dep.runFor(kWindow);
        const std::uint64_t s = eng.classSent(0);
        const std::uint64_t k = eng.classOkInDeadline(0);
        const double frac = s == prevSent
            ? 0.0
            : static_cast<double>(k - prevOk) /
                static_cast<double>(s - prevSent);
        row.fracs.push_back(frac);
        if (row.recoveryMs < 0 && frac >= 0.95)
            row.recoveryMs =
                static_cast<double>((w + 1) * kWindow) / 1e6;
        prevSent = s;
        prevOk = k;
    }
    row.tailFrac = prevSent == clearSent
        ? 0.0
        : static_cast<double>(prevOk - clearOk) /
            static_cast<double>(prevSent - clearSent);
    row.retries = eng.retriesSent();
    row.suppressed = eng.retriesSuppressed();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "overload");

    std::vector<std::function<SweepRow()>> sweepTasks;
    for (const bool controlled : {false, true})
        for (const double factor : kFactors)
            sweepTasks.push_back([factor, controlled] {
                return runSweepCase(factor, controlled);
            });
    std::vector<std::function<MetaRow()>> metaTasks;
    for (const bool budgeted : {false, true})
        metaTasks.push_back(
            [budgeted] { return runMetastable(budgeted); });

    const std::vector<SweepRow> sweep =
        rt.executor().runOrdered<SweepRow>(std::move(sweepTasks));
    const std::vector<MetaRow> meta =
        rt.executor().runOrdered<MetaRow>(std::move(metaTasks));

    // ---- Part A report --------------------------------------------------
    std::printf("# bench_overload: knee with vs without adaptive "
                "overload control (capacity %.0f qps)\n",
                kCapacityQps);
    const std::size_t n = std::size(kFactors);
    double kneeBase = 0, kneeCtrl = 0;
    double goodBase16 = 0, goodCtrl16 = 0;
    for (const bool controlled : {false, true}) {
        const char *name = controlled ? "ctrl" : "base";
        std::printf("## %s\n", name);
        std::printf("%6s %10s %11s %11s %8s %10s\n", "x",
                    "target_qps", "offered_qps", "goodput_qps",
                    "p99_ms", "sheds");
        std::vector<std::pair<double, double>> curve;
        for (std::size_t i = 0; i < n; ++i) {
            const SweepRow &r = sweep[(controlled ? n : 0) + i];
            std::printf("%6.1f %10.0f %11.1f %11.1f %8.3f %10llu\n",
                        kFactors[i], r.targetQps, r.offeredQps,
                        r.goodputQps, r.p99Ms,
                        static_cast<unsigned long long>(r.sheds));
            curve.emplace_back(r.targetQps, r.goodputQps);
            if (kFactors[i] == 1.6) {
                (controlled ? goodCtrl16 : goodBase16) = r.goodputQps;
            }
        }
        const double knee = workload::kneePointRate(curve);
        (controlled ? kneeCtrl : kneeBase) = knee;
        if (knee > 0)
            std::printf("knee point: goodput diverges at %.0f qps "
                        "(%.2fx capacity)\n",
                        knee, knee / kCapacityQps);
        else if (knee == workload::kKneeNone)
            std::printf("knee point: no knee <= %.0f qps "
                        "(max offered)\n",
                        curve.back().first);
        else
            std::printf("knee point: empty sweep\n");
    }

    // ---- Part B report --------------------------------------------------
    const MetaRow &noBudget = meta[0];
    const MetaRow &budget = meta[1];
    std::printf("# metastability: %.0fms crash at 0.8x load, "
                "4 attempts, budget off vs 10%%\n",
                static_cast<double>(kCrashFor) / 1e6);
    for (const bool budgeted : {false, true}) {
        const MetaRow &r = budgeted ? budget : noBudget;
        std::printf("## retry budget %s\n", budgeted ? "10%" : "off");
        std::printf(
            "offered %.0f qps, steady goodput frac %.3f, "
            "retries %llu, suppressed %llu\n",
            r.offeredQps, r.steadyFrac,
            static_cast<unsigned long long>(r.retries),
            static_cast<unsigned long long>(r.suppressed));
        std::printf("post-clear goodput frac per %.0fms window:",
                    static_cast<double>(kWindow) / 1e6);
        for (const double f : r.fracs)
            std::printf(" %.2f", f);
        std::printf("\n");
        if (r.recoveryMs >= 0)
            std::printf("recovered (>=95%%) %.0f ms after the fault "
                        "cleared\n",
                        r.recoveryMs);
        else
            std::printf("NOT RECOVERED within %.0f ms of the fault "
                        "clearing\n",
                        static_cast<double>(kPostWindows * kWindow) /
                            1e6);
    }
    const bool demoOk =
        noBudget.tailFrac < 0.5 && budget.tailFrac >= 0.95;
    std::printf("metastable collapse without budgets: tail frac "
                "%.3f vs %.3f with -- demo %s\n",
                noBudget.tailFrac, budget.tailFrac,
                demoOk ? "ok" : "FAILED");

    // Horizon stands in for "never" in the recovery column so the
    // lower-is-better regression semantics stay monotone.
    const double horizonMs =
        static_cast<double>(kPostWindows * kWindow) / 1e6;
    char json[512];
    std::snprintf(
        json, sizeof json,
        "{\"knee_base_qps\": %.0f, \"knee_ctrl_qps\": %.0f, "
        "\"goodput_1p6x_base\": %.1f, \"goodput_1p6x_ctrl\": %.1f, "
        "\"nobudget_tail_frac\": %.3f, "
        "\"budget_goodput_frac\": %.3f, "
        "\"budget_recovery_ms\": %.0f, "
        "\"metastable_demo_ok\": %d}",
        kneeBase > 0 ? kneeBase : 0.0, kneeCtrl > 0 ? kneeCtrl : 0.0,
        goodBase16, goodCtrl16, noBudget.tailFrac, budget.tailFrac,
        budget.recoveryMs >= 0 ? budget.recoveryMs : horizonMs,
        demoOk ? 1 : 0);
    bench::recordBenchEntry("overload_metastable", json);

    rt.finish();
    return 0;
}
