/**
 * @file
 * Fidelity under faults.
 *
 * The paper validates Ditto clones under *steady* load; this bench
 * asks whether a clone also stands in for the original when things
 * go wrong. It deploys the Social Network original and its Ditto
 * clone, arms both with identical resilience policies (RPC deadlines,
 * retries, circuit breaking) and a client-side timeout, then replays
 * the *same seeded FaultPlan* against each: a mid-tier crash/restart,
 * a lossy+slow client link, and a disk slowdown. For every scenario
 * it reports p50/p99/p999 client latency, achieved qps vs goodput,
 * and timeout/error rates, plus the original-vs-clone deviation of
 * each -- the fidelity-under-faults score.
 *
 * Sanity: scenario "none" installs an *empty* FaultPlan through a
 * live FaultInjector and must match a run with no injector at all,
 * bit-exactly, proving the fault subsystem costs nothing when idle.
 *
 * Each faulted run owns its Deployment/EventQueue/RNGs, so the
 * zero-cost pair and the (scenario x {orig, clone}) matrix fan out
 * on the RunExecutor and join in submission order.
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "workload/loadgen.h"

namespace {

using namespace ditto;

constexpr sim::Time kWarm = sim::milliseconds(250);
constexpr sim::Time kMeasure = sim::milliseconds(300);
constexpr std::uint64_t kSeed = 91;

/** Everything we compare between original and clone. */
struct FaultRunResult
{
    double p50us = 0;
    double p99us = 0;
    double p999us = 0;
    double achievedQps = 0;
    double goodput = 0;
    double timeoutRate = 0;
    double errorRate = 0;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t netDropped = 0;
    bool accounted = false;  //!< sent == delivered+dropped+in-flight

    // Per-outcome request mix over the measured window.
    std::uint64_t okCount = 0;        //!< client Ok completions
    std::uint64_t timeoutCount = 0;   //!< client-side timeouts
    std::uint64_t shedCount = 0;      //!< shed responses
    std::uint64_t cancelledCount = 0; //!< requests cancelled in-tree
    std::uint64_t hedgeWonCount = 0;  //!< calls won by a hedge
};

app::ResilienceSpec
benchResilience()
{
    app::ResilienceSpec res;
    res.rpcDeadline = sim::milliseconds(5);
    res.retry.maxAttempts = 2;
    res.retry.baseBackoff = sim::microseconds(200);
    res.retry.jitter = 0.1;
    res.breaker.enabled = true;
    res.breaker.failureThreshold = 10;
    res.breaker.openDuration = sim::milliseconds(10);
    // Full request lifecycle: end-to-end deadlines, cooperative
    // cancellation, and hedging against the replicated post-storage
    // tier (see runFaulted).
    res.propagateDeadline = true;
    res.hopMargin = sim::microseconds(200);
    res.cancellation = true;
    res.hedge.enabled = true;
    res.hedge.delay = sim::microseconds(500);
    return res;
}

/**
 * Deploy `tiers` on one node, drive the root with `load`, optionally
 * install `plan` through a FaultInjector, measure one window.
 */
FaultRunResult
runFaulted(const std::vector<app::ServiceSpec> &tiers,
           const std::string &rootName, const workload::LoadSpec &load,
           const app::ResilienceSpec &resilience,
           const fault::FaultPlan &plan, bool useInjector,
           const std::string &replicate = "")
{
    app::Deployment dep(kSeed);
    os::Machine &machine = dep.addMachine("node", hw::platformA());
    for (app::ServiceSpec tier : tiers) {
        tier.resilience = resilience;
        dep.deploy(tier, machine);
    }
    dep.wireAll();
    // A second replica of one tier gives the hedge policy somewhere
    // to send its backup attempt (hedging needs >= 2 replicas).
    if (!replicate.empty())
        dep.addReplica(replicate, machine);
    app::ServiceInstance *root = dep.find(rootName);
    workload::LoadSpec clientLoad = load;
    if (resilience.propagateDeadline) {
        clientLoad.propagateDeadline = true;
        clientLoad.cancelOnTimeout = resilience.cancellation;
    }
    workload::LoadGen gen(dep, *root, clientLoad, kSeed ^ 0x10ad);

    fault::FaultInjector injector(dep);
    if (useInjector)
        injector.install(plan);

    gen.start();
    dep.runFor(kWarm);
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(kMeasure);

    FaultRunResult r;
    r.p50us = static_cast<double>(gen.latency().percentile(0.5)) / 1e3;
    r.p99us = static_cast<double>(gen.latency().percentile(0.99)) / 1e3;
    r.p999us =
        static_cast<double>(gen.latency().percentile(0.999)) / 1e3;
    r.achievedQps = gen.achievedQps();
    r.goodput = gen.goodput();
    r.sent = gen.sent();
    r.completed = gen.completed();
    const double sent = static_cast<double>(std::max<std::uint64_t>(
        gen.sent(), 1));
    r.timeoutRate = static_cast<double>(gen.timedOut()) / sent;
    r.errorRate = static_cast<double>(gen.completedError() +
                                      gen.completedShed()) / sent;
    r.netDropped = dep.network().messagesDropped();
    r.accounted = dep.network().messagesSent() ==
        dep.network().messagesDelivered() +
        dep.network().messagesDropped() +
        dep.network().messagesInFlight();
    r.okCount = gen.completedOk();
    r.timeoutCount = gen.timedOut();
    r.shedCount = gen.completedShed();
    for (const auto &svc : dep.services()) {
        r.cancelledCount += svc->stats().requestsCancelled;
        r.hedgeWonCount += svc->stats().rpcHedgeWins;
    }
    return r;
}

/** A named fault scenario; `suffix` retargets services for the clone. */
struct Scenario
{
    std::string name;
    fault::FaultPlan (*make)(const std::string &suffix);
};

fault::FaultPlan
planNone(const std::string &)
{
    return {};
}

fault::FaultPlan
planMidTierCrash(const std::string &suffix)
{
    // Crash the post-storage tier twice inside the measured window;
    // warm restart after 40ms each time.
    fault::FaultPlan plan;
    plan.serviceCrash("sn.poststorage" + suffix,
                      kWarm + sim::milliseconds(40),
                      sim::milliseconds(40));
    plan.serviceCrash("sn.poststorage" + suffix,
                      kWarm + sim::milliseconds(180),
                      sim::milliseconds(40));
    return plan;
}

fault::FaultPlan
planLossyClientLink(const std::string &)
{
    // External-client <-> node link: 20% loss plus a 300us spike for
    // half the measured window.
    fault::FaultPlan plan;
    plan.linkDrop("", "node", kWarm + sim::milliseconds(30),
                  sim::milliseconds(150), 0.2);
    plan.linkLatency("", "node", kWarm + sim::milliseconds(30),
                     sim::milliseconds(150), sim::microseconds(300));
    return plan;
}

fault::FaultPlan
planDiskSlowdown(const std::string &)
{
    fault::FaultPlan plan;
    plan.diskSlowdown("node", kWarm + sim::milliseconds(20),
                      sim::milliseconds(220), 8.0);
    return plan;
}

double
relDev(double clone, double orig)
{
    const double denom = std::max(std::abs(orig), 1e-9);
    return std::abs(clone - orig) / denom;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ditto;

    ditto::bench::BenchRuntime rt(argc, argv, "bench_faults");
    sim::RunExecutor &ex = rt.executor();

    // ---- zero-cost check: empty plan == no injector ------------------
    const auto origTiers = apps::socialNetworkSpecs();
    const std::string origRoot = apps::socialNetworkFrontend();
    const auto snLoad = apps::socialNetworkLoad();
    workload::LoadSpec load = snLoad.at(snLoad.mediumQps * 0.6);
    load.timeout = sim::milliseconds(25);
    const app::ResilienceSpec vanilla;  // everything disabled

    auto bareFuture = ex.submit([&origTiers, &origRoot, &load,
                                 &vanilla] {
        return runFaulted(origTiers, origRoot, load, vanilla, {},
                          false);
    });
    auto emptyFuture = ex.submit([&origTiers, &origRoot, &load,
                                  &vanilla] {
        return runFaulted(origTiers, origRoot, load, vanilla, {},
                          true);
    });
    const FaultRunResult bare = ex.collect(std::move(bareFuture));
    const FaultRunResult emptyPlan = ex.collect(std::move(emptyFuture));
    const bool zeroCost = bare.sent == emptyPlan.sent &&
        bare.completed == emptyPlan.completed &&
        bare.p50us == emptyPlan.p50us &&
        bare.p99us == emptyPlan.p99us &&
        bare.p999us == emptyPlan.p999us &&
        bare.timeoutRate == emptyPlan.timeoutRate;
    std::cout << "empty FaultPlan vs no injector: "
              << (zeroCost ? "IDENTICAL" : "DIVERGED (BUG)") << "\n";

    // ---- clone the social network ------------------------------------
    std::cout << "cloning social network...\n";
    const core::TopologyCloneResult clone =
        ditto::bench::cloneSocialNetwork(kSeed, &ex);
    workload::LoadSpec cloneLoad =
        ditto::bench::socialCloneLoad(snLoad.mediumQps * 0.6);
    cloneLoad.timeout = load.timeout;

    const app::ResilienceSpec res = benchResilience();
    const Scenario scenarios[] = {
        {"none", planNone},
        {"midtier-crash", planMidTierCrash},
        {"client-link-loss", planLossyClientLink},
        {"disk-slowdown", planDiskSlowdown},
    };

    stats::TablePrinter table({"scenario", "variant", "p50us", "p99us",
                               "p999us", "qps", "goodput", "timeout%",
                               "err%"});
    stats::TablePrinter devs({"scenario", "dp50", "dp99", "dp999",
                              "dtimeout(pp)", "derr(pp)"});
    bool accountingOk = true;

    std::vector<std::function<FaultRunResult()>> tasks;
    for (const Scenario &scenario : scenarios) {
        tasks.push_back([&origTiers, &origRoot, &load, &res,
                         &scenario] {
            return runFaulted(origTiers, origRoot, load, res,
                              scenario.make(""), true,
                              "sn.poststorage");
        });
        tasks.push_back([&clone, &cloneLoad, &res, &scenario] {
            return runFaulted(clone.specs, clone.rootClone, cloneLoad,
                              res, scenario.make("_clone"), true,
                              "sn.poststorage_clone");
        });
    }
    const std::vector<FaultRunResult> runs =
        ex.runOrdered<FaultRunResult>(std::move(tasks));

    std::size_t runIdx = 0;
    for (const Scenario &scenario : scenarios) {
        const FaultRunResult &orig = runs[runIdx++];
        const FaultRunResult &syn = runs[runIdx++];
        accountingOk = accountingOk && orig.accounted && syn.accounted;

        auto addRow = [&](const char *tag, const FaultRunResult &r) {
            table.addRow({scenario.name, tag,
                          ditto::bench::cell(r.p50us, 1),
                          ditto::bench::cell(r.p99us, 1),
                          ditto::bench::cell(r.p999us, 1),
                          ditto::bench::cell(r.achievedQps, 0),
                          ditto::bench::cell(r.goodput, 0),
                          stats::formatPercent(r.timeoutRate, 2),
                          stats::formatPercent(r.errorRate, 2)});
        };
        addRow("orig", orig);
        addRow("clone", syn);

        devs.addRow({scenario.name,
                     stats::formatPercent(
                         relDev(syn.p50us, orig.p50us), 1),
                     stats::formatPercent(
                         relDev(syn.p99us, orig.p99us), 1),
                     stats::formatPercent(
                         relDev(syn.p999us, orig.p999us), 1),
                     ditto::bench::cell(
                         100.0 * (syn.timeoutRate - orig.timeoutRate),
                         2),
                     ditto::bench::cell(
                         100.0 * (syn.errorRate - orig.errorRate),
                         2)});
    }

    stats::printBanner(std::cout,
                       "Original vs clone under injected faults");
    table.print(std::cout);
    stats::printBanner(std::cout,
                       "Clone deviation per scenario (latency rel., "
                       "rates in percentage points)");
    devs.print(std::cout);
    std::cout << "message accounting (sent == delivered + dropped + "
              << "in-flight): " << (accountingOk ? "OK" : "VIOLATED")
              << "\n";

    // Per-outcome request mix across every faulted run, published
    // into BENCH_pipeline.json next to the bench timings.
    FaultRunResult mix;
    for (const FaultRunResult &r : runs) {
        mix.okCount += r.okCount;
        mix.timeoutCount += r.timeoutCount;
        mix.shedCount += r.shedCount;
        mix.cancelledCount += r.cancelledCount;
        mix.hedgeWonCount += r.hedgeWonCount;
    }
    const std::string mixJson = "{\"ok\": " +
        std::to_string(mix.okCount) +
        ", \"timeout\": " + std::to_string(mix.timeoutCount) +
        ", \"shed\": " + std::to_string(mix.shedCount) +
        ", \"cancelled\": " + std::to_string(mix.cancelledCount) +
        ", \"hedge_won\": " + std::to_string(mix.hedgeWonCount) + "}";
    ditto::bench::recordBenchEntry("bench_faults_outcomes", mixJson);
    std::cout << "outcome mix (all faulted runs): " << mixJson << "\n";

    return zeroCost && accountingOk ? EXIT_SUCCESS : EXIT_FAILURE;
}
