/**
 * @file
 * Multi-region failover benchmark: RTO and cross-region latency.
 *
 * Sweeps a replicated service from 1 to 4 serving regions behind a
 * front service homed in its own region, joined by a seeded WAN mesh
 * (cluster/region.h). Each case drives open-loop load through the
 * front (prefer-local balancing) and injects a region-outage window
 * on the first serving region plus -- when a second serving region
 * exists -- a WAN partition between the front's region and that
 * region. A RegionFailoverMonitor watches the group and re-routes:
 * per case the bench reports the client outcome mix, p50/p99, and the
 * monitor's failovers, recoveries, and last detection-to-reroute
 * interval (RTO).
 *
 * With one serving region the outage has nowhere to fail over to and
 * the client eats timeouts; from two regions on, traffic re-routes
 * across the WAN and requests keep completing at a higher p99 --
 * which is the multi-region availability story in one table.
 *
 * Cases fan out on the RunExecutor and stdout is printed after the
 * ordered join, so output is byte-identical at any --jobs (§8).
 * Results are published into BENCH_pipeline.json via
 * recordBenchEntry("bench_regions_failover", ...).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "bench/bench_common.h"
#include "cluster/failover.h"
#include "cluster/region.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "obs/metrics.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

struct RegionRow
{
    unsigned regions = 0;  //!< serving regions (front region excluded)
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t timedOut = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    std::uint64_t failovers = 0;
    std::uint64_t recoveries = 0;
    double rtoMs = 0;  //!< last detection-to-reroute interval
    double wallSeconds = 0;
};

std::string
regionName(unsigned i)
{
    return "r" + std::to_string(i);
}

app::ServiceSpec
computeService(const std::string &name, std::uint64_t seed)
{
    app::ServiceSpec s;
    s.name = name;
    s.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = name + ".h";
    bs.instCount = 64;
    bs.seed = seed;
    s.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "req";
    ep.handler.ops.push_back(app::opCompute(0, 2, 6));
    s.endpoints.push_back(std::move(ep));
    return s;
}

RegionRow
runRegionCase(unsigned servingRegions)
{
    const auto wallStart = std::chrono::steady_clock::now();

    app::Deployment dep(4242);

    // Region r0 homes the front; r1..rN each host one api replica.
    std::vector<cluster::RegionSpec> regions;
    regions.push_back({regionName(0), 1});
    for (unsigned r = 1; r <= servingRegions; ++r)
        regions.push_back({regionName(r), 1});
    cluster::WanProfile wan;
    wan.baseLatency = sim::microseconds(300);
    wan.latencySpread = sim::microseconds(150);
    wan.seed = 7;
    const std::vector<std::uint32_t> ids =
        cluster::buildRegions(dep, regions, wan);

    app::ServiceSpec api = computeService("api", 0x5eedbull);

    app::ServiceSpec front = computeService("front", 0xf207ull);
    front.name = "front";
    front.threads.workers = 8;
    front.downstreams.push_back("api");
    front.balancing.defaultPolicy = cluster::BalancerPolicy::PreferLocal;
    front.resilience.rpcDeadline = sim::milliseconds(4);
    front.resilience.retry.maxAttempts = 2;
    front.resilience.retry.baseBackoff = sim::microseconds(200);
    front.resilience.retry.maxBackoff = sim::milliseconds(1);
    front.resilience.propagateDeadline = true;
    front.endpoints[0].handler.ops.insert(
        front.endpoints[0].handler.ops.begin() + 1,
        app::opRpc(0, 0, 128, 256));

    dep.deployInRegion(api, regionName(1));
    for (unsigned r = 2; r <= servingRegions; ++r)
        dep.addReplicaInRegion("api", regionName(r));
    dep.deployInRegion(front, regionName(0));
    dep.wireAll();

    obs::MetricsRegistry metrics;
    cluster::RegionFailoverSpec fs;
    fs.period = sim::microseconds(500);
    fs.failureThreshold = 2;
    fs.viewRegion = ids.front();
    cluster::RegionFailoverMonitor monitor(dep, "api", metrics, fs);
    monitor.start();

    // Outage of the first serving region mid-run; once a second
    // serving region exists, also partition the front's region from
    // it later in the run (unreachable =/= crashed -- the monitor
    // must retire it all the same).
    fault::FaultPlan plan;
    plan.regionOutage(regionName(1), sim::milliseconds(30),
                      sim::milliseconds(20));
    if (servingRegions >= 2) {
        plan.regionPartition(regionName(0), regionName(2),
                             sim::milliseconds(60),
                             sim::milliseconds(15));
    }
    fault::FaultInjector inj(dep);
    inj.install(plan);

    workload::LoadSpec ls;
    ls.qps = 2000;
    ls.connections = 4;
    ls.openLoop = true;
    ls.timeout = sim::milliseconds(10);
    workload::LoadGen lg(dep, *dep.find("front"), ls, 91);

    lg.start();
    dep.runFor(sim::milliseconds(90));
    lg.stop();
    dep.runFor(sim::milliseconds(10));

    RegionRow row;
    row.regions = servingRegions;
    row.sent = lg.sent();
    row.ok = lg.completedOk();
    row.timedOut = lg.timedOut();
    row.p50Ms =
        static_cast<double>(lg.latency().percentile(0.5)) / 1e6;
    row.p99Ms =
        static_cast<double>(lg.latency().percentile(0.99)) / 1e6;
    row.failovers = monitor.stats().failovers;
    row.recoveries = monitor.stats().recoveries;
    row.rtoMs = static_cast<double>(monitor.stats().lastRtoNs) / 1e6;
    row.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "regions");

    std::vector<std::function<RegionRow()>> tasks;
    for (unsigned n = 1; n <= 4; ++n)
        tasks.push_back([n] { return runRegionCase(n); });
    const std::vector<RegionRow> rows =
        rt.executor().runOrdered<RegionRow>(std::move(tasks));

    std::printf(
        "# bench_regions: failover RTO and cross-region latency\n");
    std::printf("%8s %8s %8s %8s %8s %8s %5s %5s %8s\n", "regions",
                "sent", "ok", "timeout", "p50_ms", "p99_ms", "fo",
                "rec", "rto_ms");
    std::string cases = "[";
    for (const RegionRow &r : rows) {
        std::printf(
            "%8u %8llu %8llu %8llu %8.3f %8.3f %5llu %5llu %8.3f\n",
            r.regions, static_cast<unsigned long long>(r.sent),
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.timedOut), r.p50Ms,
            r.p99Ms, static_cast<unsigned long long>(r.failovers),
            static_cast<unsigned long long>(r.recoveries), r.rtoMs);
        std::fprintf(stderr, "[regions %u] wall %.2fs\n", r.regions,
                     r.wallSeconds);
        char buf[256];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"regions\": %u, \"sent\": %llu, \"ok\": %llu, "
            "\"timeout\": %llu, \"p99_ms\": %.3f, \"failovers\": "
            "%llu, \"rto_ms\": %.3f}",
            cases.size() > 1 ? ", " : "", r.regions,
            static_cast<unsigned long long>(r.sent),
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.timedOut), r.p99Ms,
            static_cast<unsigned long long>(r.failovers), r.rtoMs);
        cases += buf;
    }
    cases += "]";
    bench::recordBenchEntry("bench_regions_failover",
                            "{\"cases\": " + cases + "}");

    rt.finish();
    return 0;
}
