/**
 * @file
 * Fig. 6: end-to-end Social Network latency (p50/p95/p99) vs QPS,
 * with every microservice replaced by its Ditto clone.
 *
 * All (QPS x {original, clone}) runs are independent seeded
 * simulations executed on the RunExecutor and joined in submission
 * order: the table is byte-identical at any `--jobs` value.
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig6");
    sim::RunExecutor &ex = rt.executor();
    const hw::PlatformSpec platform = hw::platformA();

    std::cout << "Cloning the Social Network topology (profiled at "
                 "medium load)...\n";
    const core::TopologyCloneResult clone = cloneSocialNetwork(80, &ex);
    std::cout << "Cloned " << clone.specs.size() << " tiers.\n";

    stats::printBanner(
        std::cout,
        "Fig. 6: Social Network end-to-end latency vs QPS "
        "(all tiers replaced by clones)");

    stats::TablePrinter table({"QPS", "actual p50 (ms)", "synth p50",
                               "actual p95", "synth p95",
                               "actual p99", "synth p99"});

    const auto load = apps::socialNetworkLoad();
    const double qpsGrid[] = {200.0, 500.0, 1000.0,
                              1500.0, 2000.0, 2400.0};

    std::vector<std::function<SnRunResult()>> tasks;
    for (double qps : qpsGrid) {
        tasks.push_back([qps, &load, &platform] {
            return runSocialNetwork(apps::socialNetworkSpecs(),
                                    apps::socialNetworkFrontend(),
                                    load.at(qps), platform);
        });
        tasks.push_back([qps, &clone, &platform] {
            return runSocialNetwork(clone.specs, clone.rootClone,
                                    socialCloneLoad(qps), platform);
        });
    }
    const std::vector<SnRunResult> runs =
        ex.runOrdered<SnRunResult>(std::move(tasks));

    for (std::size_t i = 0; i < std::size(qpsGrid); ++i) {
        const double qps = qpsGrid[i];
        const SnRunResult &orig = runs[2 * i];
        const SnRunResult &synth = runs[2 * i + 1];
        auto ms = [](const stats::LatencyHistogram &h, double q) {
            return cell(sim::toMilliseconds(h.percentile(q)), 2);
        };
        table.addRow({cell(qps, 0),
                      ms(orig.clientLatency, 0.50),
                      ms(synth.clientLatency, 0.50),
                      ms(orig.clientLatency, 0.95),
                      ms(synth.clientLatency, 0.95),
                      ms(orig.clientLatency, 0.99),
                      ms(synth.clientLatency, 0.99)});
        std::cout << "  measured qps=" << qps
                  << " (actual achieved " << orig.achievedQps
                  << ", synth achieved " << synth.achievedQps << ")\n";
    }
    table.print(std::cout);
    return 0;
}
