/**
 * @file
 * Ablation study of the generator's design choices (the decisions
 * DESIGN.md Sec. 6 calls out, beyond the paper's Fig. 9 stages):
 *
 *   - pooled-array allocation (one allocation per working-set size
 *     vs a private copy per block),
 *   - size-aware pointer-chase placement (largest sets first vs the
 *     same budget spread uniformly -- approximated by chaseScale=0),
 *   - per-size regular/irregular assignment vs none (Random only).
 *
 * Each ablation clones the integration reference service with one
 * mechanism degraded and reports the IPC/L1d/L2 error vs the
 * original, showing why the mechanism is needed.
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "hw/block_builder.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

/** The integration-test reference service (mixed working sets). */
app::ServiceSpec
referenceService()
{
    app::ServiceSpec spec;
    spec.name = "ref";
    spec.threads.workers = 2;

    hw::BlockSpec parse;
    parse.label = "ref.parse";
    parse.instCount = 600;
    parse.mix = hw::MixWeights::parserCode();
    parse.branchFraction = 0.18;
    parse.branchKinds = {{2, 2}, {3, 3}};
    parse.memFraction = 0.25;
    parse.streams = {{256 << 10, hw::StreamKind::Sequential, false, 1}};
    parse.seed = 41;
    spec.blocks.push_back(hw::buildBlock(parse));

    hw::BlockSpec lookup;
    lookup.label = "ref.lookup";
    lookup.instCount = 120;
    lookup.mix = hw::MixWeights::hashCode();
    lookup.memFraction = 0.35;
    lookup.streams = {
        {8u << 20, hw::StreamKind::PointerChase, true, 0.6},
        {128u << 10, hw::StreamKind::Random, true, 0.4}};
    lookup.seed = 42;
    spec.blocks.push_back(hw::buildBlock(lookup));

    app::EndpointSpec ep;
    ep.name = "query";
    ep.responseBytesMin = 512;
    ep.responseBytesMax = 2048;
    ep.handler.ops = {
        app::opCall("a", {{app::opCompute(0, 6, 10)}}),
        app::opCall("b", {{app::opCompute(1, 10, 18)}}),
        app::opCall("c", {{app::opCompute(0, 2, 3)}}),
    };
    spec.endpoints.push_back(ep);
    return spec;
}

/** Degrade a generated spec per the ablation under study. */
void
unpoolStreams(app::ServiceSpec &spec)
{
    for (auto &block : spec.blocks) {
        for (auto &stream : block.streams)
            stream.poolKey = 0;  // private allocation per block
    }
}

void
randomizeKinds(app::ServiceSpec &spec)
{
    for (auto &block : spec.blocks) {
        for (auto &stream : block.streams) {
            if (stream.kind == hw::StreamKind::Sequential)
                stream.kind = hw::StreamKind::Random;
        }
    }
}

void
dropChases(app::ServiceSpec &spec)
{
    for (auto &block : spec.blocks) {
        for (auto &stream : block.streams) {
            if (stream.kind == hw::StreamKind::PointerChase)
                stream.kind = hw::StreamKind::Random;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_ablation");
    sim::RunExecutor &ex = rt.executor();
    const app::ServiceSpec original = referenceService();
    workload::LoadSpec load;
    load.qps = 3000;
    load.connections = 8;

    // Profile + generate once (untuned, to isolate the mechanisms).
    app::Deployment dep(81);
    os::Machine &machine = dep.addMachine("node", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(original, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, 5);
    gen.start();
    core::CloneOptions opts;
    opts.fineTune = false;
    opts.profiling.warmup = sim::milliseconds(100);
    opts.profiling.window = sim::milliseconds(120);
    const core::CloneResult clone =
        core::cloneService(dep, svc, load, hw::platformA(), opts);

    struct Ablation
    {
        const char *name;
        void (*degrade)(app::ServiceSpec &);
    };
    const Ablation ablations[] = {
        {"full generator", nullptr},
        {"no pooled arrays", unpoolStreams},
        {"no regular streams", randomizeKinds},
        {"no pointer chasing", dropChases},
    };

    // The target run and the four degraded variants are independent
    // seeded simulations: fan them out together.
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([&original, &load] {
        return runSingleTier(original, load, hw::platformA());
    });
    for (const Ablation &ablation : ablations) {
        tasks.push_back([&ablation, &clone, &load] {
            app::ServiceSpec variant = clone.spec;
            if (ablation.degrade)
                ablation.degrade(variant);
            return runSingleTier(variant, core::cloneLoadSpec(load),
                                 hw::platformA());
        });
    }
    const std::vector<RunResult> runs =
        ex.runOrdered<RunResult>(std::move(tasks));
    const RunResult &target = runs[0];

    stats::printBanner(
        std::cout,
        "Ablation: generator mechanisms vs clone accuracy "
        "(untuned, reference service)");
    stats::TablePrinter table({"variant", "IPC", "IPC err", "L1d err",
                               "L2 err", "LLC err"});
    table.addRow({"original (target)", cell(target.report.ipc, 3),
                  "-", "-", "-", "-"});
    table.addSeparator();

    for (std::size_t i = 0; i < std::size(ablations); ++i) {
        const Ablation &ablation = ablations[i];
        const RunResult &run = runs[i + 1];
        table.addRow(
            {ablation.name, cell(run.report.ipc, 3),
             stats::formatPercent(profile::relativeError(
                 run.report.ipc, target.report.ipc), 1),
             stats::formatPercent(profile::relativeError(
                 run.report.l1dMissRate, target.report.l1dMissRate),
                 1),
             stats::formatPercent(profile::relativeError(
                 run.report.l2MissRate, target.report.l2MissRate),
                 1),
             stats::formatPercent(profile::relativeError(
                 run.report.llcMissRate, target.report.llcMissRate),
                 1)});
        std::cout << "  " << ablation.name << " done\n";
    }
    table.print(std::cout);
    return 0;
}
