/**
 * @file
 * Trace-cloning fidelity capstone: close the paper's loop on the
 * built-in foreign trace fixture (Sec. 4.2 applied to a system we do
 * not control).
 *
 * Runs the full closure pipeline -- ingest a foreign Jaeger document,
 * synthesize a clone, run it, re-export its traces, re-analyze --
 * across several seeds on the RunExecutor, prints each per-edge
 * original-vs-clone comparison, and publishes the worst-case fidelity
 * numbers to BENCH_pipeline.json as the "clone_fidelity" entry
 * (graph_ok plus max rate/byte error percentages), next to the
 * "bench_clone" wall-clock timing. Stdout is byte-identical at any
 * --jobs (DESIGN.md §8).
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "clone/foreign_fixture.h"
#include "clone/trace_clone.h"

using namespace ditto;

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "bench_clone");

    const std::string fixture = clone::exampleForeignTraceJson();
    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};

    std::vector<std::function<clone::ClosureResult()>> tasks;
    for (const std::uint64_t seed : seeds) {
        tasks.push_back([&fixture, seed] {
            clone::ClosureOptions opts;
            opts.seed = seed;
            opts.qps = 2000;
            opts.measure = sim::milliseconds(300);
            return clone::runClosure(fixture, opts);
        });
    }
    const auto results =
        rt.executor().runOrdered<clone::ClosureResult>(
            std::move(tasks));

    std::printf("# bench_clone: foreign-trace closure fidelity\n");
    bool graphOk = true;
    bool pass = true;
    double maxRateErrPct = 0;
    double maxReqBytesErrPct = 0;
    double maxRespBytesErrPct = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const clone::ClosureResult &res = results[i];
        std::printf("--- seed %llu ---\n",
                    static_cast<unsigned long long>(seeds[i]));
        const std::string report = res.report();
        std::fwrite(report.data(), 1, report.size(), stdout);
        graphOk = graphOk && res.fidelity.isomorphic;
        pass = pass && res.fidelity.pass;
        maxRateErrPct =
            std::max(maxRateErrPct, res.fidelity.maxRateErrPct);
        maxReqBytesErrPct = std::max(
            maxReqBytesErrPct, res.fidelity.maxRequestBytesErrPct);
        maxRespBytesErrPct = std::max(
            maxRespBytesErrPct, res.fidelity.maxResponseBytesErrPct);
    }
    std::printf("closure: %s over %zu seeds, max rate err %.2f%%, "
                "req bytes %.2f%%, resp bytes %.2f%%\n",
                pass ? "PASS" : "FAIL", seeds.size(), maxRateErrPct,
                maxReqBytesErrPct, maxRespBytesErrPct);

    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "{\"graph_ok\": %d, \"pass\": %d, "
                  "\"max_rate_err_pct\": %.3f, "
                  "\"max_req_bytes_err_pct\": %.3f, "
                  "\"max_resp_bytes_err_pct\": %.3f}",
                  graphOk ? 1 : 0, pass ? 1 : 0, maxRateErrPct,
                  maxReqBytesErrPct, maxRespBytesErrPct);
    bench::recordBenchEntry("clone_fidelity", entry);

    rt.finish();
    return pass ? 0 : 1;
}
