/**
 * @file
 * Fig. 11: power-management study -- p99 latency of actual and
 * synthetic Memcached across a grid of active core counts and CPU
 * frequencies, with a 1 ms QoS. Cells marked 'X' violate the QoS:
 * the clone must draw the same feasibility frontier as the original,
 * which is what lets a provider evaluate power management without
 * the original's source.
 *
 * The 84 grid cells (7 core counts x 6 frequencies x 2 variants) are
 * independent seeded simulations fanned out on the RunExecutor and
 * joined in submission order.
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

constexpr double kQosMs = 2.0;
constexpr double kStudyQps = 17000;

std::string
cellFor(double p99ms)
{
    if (p99ms > kQosMs)
        return "X";
    return stats::formatDouble(p99ms, 2) + "ms";
}

double
p99At(const app::ServiceSpec &spec, const workload::LoadSpec &load,
      unsigned cores, double ghz)
{
    hw::PlatformSpec platform =
        hw::withCoresAndFrequency(hw::platformA(), cores, ghz);
    platform.smtEnabled = false;  // the study scales physical cores
    const RunResult run =
        runSingleTier(spec, load, platform, sim::milliseconds(150),
                      sim::milliseconds(200));
    return run.report.p99LatencyMs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig11");
    sim::RunExecutor &ex = rt.executor();
    const AppCase memcached{"Memcached", apps::memcachedSpec(),
                            apps::memcachedLoad()};
    const workload::LoadSpec load = memcached.load.at(kStudyQps);

    std::cout << "Cloning Memcached...\n";
    const core::CloneResult clone =
        cloneSingleTier(memcached, true, 79, &ex);
    const workload::LoadSpec cloneLoad = core::cloneLoadSpec(load);

    const unsigned coreGrid[] = {4, 6, 8, 10, 12, 14, 16};
    const double freqGrid[] = {2.1, 1.9, 1.7, 1.5, 1.3, 1.1};

    stats::printBanner(
        std::cout,
        "Fig. 11: Memcached p99 under core/frequency scaling "
        "(QoS = 2ms, X = violated), " +
            std::to_string(static_cast<int>(kStudyQps)) + " QPS");

    std::vector<std::function<double()>> tasks;
    for (const bool synthetic : {false, true}) {
        for (double ghz : freqGrid) {
            for (unsigned cores : coreGrid) {
                if (synthetic) {
                    tasks.push_back([&clone, &cloneLoad, cores, ghz] {
                        return p99At(clone.spec, cloneLoad, cores,
                                     ghz);
                    });
                } else {
                    tasks.push_back([&memcached, &load, cores, ghz] {
                        return p99At(memcached.spec, load, cores,
                                     ghz);
                    });
                }
            }
        }
    }
    const std::vector<double> p99s =
        ex.runOrdered<double>(std::move(tasks));

    std::size_t cellIdx = 0;
    for (const bool synthetic : {false, true}) {
        std::vector<std::string> header{"GHz \\ cores"};
        for (unsigned c : coreGrid)
            header.push_back(std::to_string(c));
        stats::TablePrinter table(header);
        for (double ghz : freqGrid) {
            std::vector<std::string> row{stats::formatDouble(ghz, 1)};
            for (unsigned cores : coreGrid) {
                (void)cores;
                row.push_back(cellFor(p99s[cellIdx++]));
            }
            table.addRow(row);
            std::cout << "  " << (synthetic ? "synthetic" : "actual")
                      << " " << ghz << "GHz row done\n";
        }
        stats::printBanner(std::cout, synthetic
                               ? "Synthetic Memcached"
                               : "Actual Memcached");
        table.print(std::cout);
    }
    return 0;
}
