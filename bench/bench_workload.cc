/**
 * @file
 * Knee-point sweep for the sessionized workload engine.
 *
 * Drives a two-endpoint sleep-based service (capacity is calculable:
 * 2 workers / 0.52 ms mean service time ~= 3.8k calls/s) with the
 * WorkloadEngine at offered loads from 0.2x to 2x capacity under
 * three traffic shapes (steady Poisson, diurnal sinusoid, flash
 * crowd). Per shape it prints offered vs goodput-within-deadline per
 * step, the detected knee point (first offered rate where goodput
 * diverges, workload/slo.h), and the per-class SLO table at 1x.
 *
 * The CloudNativeSim-style evaluation: the knee is where the QoS
 * story starts, and it must be *visible* -- goodput tracks offered
 * below capacity and diverges past it. Knee rates and 1x SLO columns
 * go to BENCH_pipeline.json (`workload_knees` entry; the
 * `*_knee_qps` keys carry higher-is-better regression semantics in
 * tools/check_bench_regression.py).
 *
 * Runs fan out on the RunExecutor; all stdout is printed after the
 * ordered join, so output is byte-identical at any --jobs.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "app/deployment.h"
#include "bench/bench_common.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "workload/engine.h"

using namespace ditto;

namespace {

/** Nominal capacity the sweep is scaled against (calls/second). */
constexpr double kCapacityQps = 3800;

/** 0.2x .. 2x capacity. */
constexpr double kFactors[] = {0.2, 0.4, 0.6, 0.8, 1.0,
                               1.2, 1.4, 1.6, 1.8, 2.0};

struct SweepCase
{
    workload::ShapeKind shape;
    double factor;
};

struct SweepRow
{
    double targetQps = 0;
    double offeredQps = 0;
    double goodputQps = 0;
    double p99Ms = 0;
    double violRead = 0;
    double violWrite = 0;
    std::string sloTable; //!< filled at the 1x point only
};

/** Two-endpoint backend: read sleeps 400us, write sleeps 1ms. */
app::ServiceSpec
backendSpec()
{
    app::ServiceSpec spec;
    spec.name = "api";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "api.h";
    bs.instCount = 64;
    bs.seed = 7;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec read;
    read.name = "read";
    read.handler.ops = {app::opSleep(sim::microseconds(400))};
    read.responseBytesMin = read.responseBytesMax = 512;
    spec.endpoints.push_back(read);
    app::EndpointSpec write;
    write.name = "write";
    write.handler.ops = {app::opSleep(sim::milliseconds(1))};
    write.responseBytesMin = write.responseBytesMax = 128;
    spec.endpoints.push_back(write);
    return spec;
}

workload::WorkloadSpec
engineSpec(const SweepCase &sc)
{
    workload::WorkloadSpec ws;
    // Keep the *call* rate on the sweep axis: a session averages
    // (3+10)/2 = 6.5 calls.
    const double target = kCapacityQps * sc.factor;
    ws.sessionsPerSec = target /
        ((ws.session.minCalls + ws.session.maxCalls) / 2.0);
    ws.connections = 16;
    ws.session.meanThink = sim::milliseconds(1);
    ws.shape.kind = sc.shape;
    ws.shape.amplitude = 0.5;                    // diurnal
    ws.shape.period = sim::milliseconds(100);    // diurnal
    ws.shape.stepAt = sim::milliseconds(250);    // flash (in-window)
    ws.shape.stepMagnitude = 3.0;                // flash
    ws.shape.decayHalfLife = sim::milliseconds(50);
    workload::EndpointClass read;
    read.name = "read";
    read.endpoint = 0;
    read.weight = 0.8;
    read.slo.deadline = sim::milliseconds(4);
    workload::EndpointClass write;
    write.name = "write";
    write.endpoint = 1;
    write.weight = 0.2;
    write.slo.deadline = sim::milliseconds(8);
    ws.classes = {read, write};
    // A client timeout keeps sessions progressing past saturation
    // (an unbounded wait would throttle the offered rate instead of
    // surfacing the violation).
    ws.timeout = sim::milliseconds(12);
    return ws;
}

SweepRow
runSweepCase(const SweepCase &sc)
{
    app::Deployment dep(2026, /*traceSampleRate=*/0.01);
    os::Machine &m = dep.addMachine("api-m", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(backendSpec(), m);
    dep.wireAll();

    workload::WorkloadEngine eng(dep, svc, engineSpec(sc), 11);
    eng.start();
    dep.runFor(sim::milliseconds(100));
    eng.beginMeasure();
    dep.runFor(sim::milliseconds(400));

    const workload::SloReport slo = eng.sloReport();
    SweepRow row;
    row.targetQps = kCapacityQps * sc.factor;
    row.offeredQps = slo.offeredQps;
    row.goodputQps = slo.goodputQps;
    row.p99Ms =
        static_cast<double>(eng.latency().percentile(0.99)) / 1e6;
    row.violRead = slo.classes[0].violationRate;
    row.violWrite = slo.classes[1].violationRate;
    if (sc.factor == 1.0)
        row.sloTable = slo.table();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "workload");

    const workload::ShapeKind shapes[] = {
        workload::ShapeKind::Constant, workload::ShapeKind::Diurnal,
        workload::ShapeKind::FlashCrowd};

    std::vector<std::function<SweepRow()>> tasks;
    for (const workload::ShapeKind shape : shapes)
        for (const double factor : kFactors)
            tasks.push_back([shape, factor] {
                return runSweepCase(SweepCase{shape, factor});
            });
    const std::vector<SweepRow> rows =
        rt.executor().runOrdered<SweepRow>(std::move(tasks));

    std::printf(
        "# bench_workload: sessionized load sweep, 0.2x-2x of "
        "%.0f qps capacity\n",
        kCapacityQps);
    std::string json = "{";
    std::size_t idx = 0;
    for (const workload::ShapeKind shape : shapes) {
        const char *name = workload::shapeKindName(shape);
        std::printf("## shape %s\n", name);
        std::printf("%6s %10s %11s %11s %8s %9s %9s\n", "x",
                    "target_qps", "offered_qps", "goodput_qps",
                    "p99_ms", "viol_read", "viol_write");
        std::vector<std::pair<double, double>> sweep;
        std::string slo1x;
        for (const double factor : kFactors) {
            const SweepRow &r = rows[idx++];
            std::printf(
                "%6.1f %10.0f %11.1f %11.1f %8.3f %9.4f %9.4f\n",
                factor, r.targetQps, r.offeredQps, r.goodputQps,
                r.p99Ms, r.violRead, r.violWrite);
            sweep.emplace_back(r.targetQps, r.goodputQps);
            if (!r.sloTable.empty())
                slo1x = r.sloTable;
        }
        const double knee = workload::kneePointRate(sweep);
        if (knee > 0)
            std::printf("knee point: goodput diverges at %.0f qps "
                        "(%.2fx capacity)\n",
                        knee, knee / kCapacityQps);
        else if (knee == workload::kKneeNone)
            std::printf("knee point: no knee <= %.0f qps "
                        "(max offered)\n",
                        sweep.empty() ? 0.0 : sweep.back().first);
        else
            std::printf("knee point: empty sweep\n");
        std::printf("SLO at 1.0x:\n%s", slo1x.c_str());
        // JSON keeps the old no-knee encoding (0): `*_knee_qps`
        // regression checks skip non-positive baselines.
        char cell[96];
        std::snprintf(cell, sizeof cell,
                      "%s\"%s_knee_qps\": %.0f",
                      json.size() > 1 ? ", " : "", name,
                      knee > 0 ? knee : 0.0);
        json += cell;
    }
    // 1x steady goodput rides along as a throughput-style column.
    char cell[96];
    std::snprintf(cell, sizeof cell, ", \"steady_goodput_1x\": %.1f",
                  rows[4].goodputQps);
    json += cell;
    json += "}";
    bench::recordBenchEntry("workload_knees", json);

    rt.finish();
    return 0;
}
