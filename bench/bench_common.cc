#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

namespace ditto::bench {

BenchRuntime::BenchRuntime(int argc, char **argv, std::string name)
    : name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      executor_(std::make_unique<sim::RunExecutor>(
          sim::RunExecutor::jobsFromArgs(argc, argv)))
{
}

BenchRuntime::~BenchRuntime()
{
    finish();
}

void
BenchRuntime::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // stderr, so stdout stays byte-identical across worker counts.
    std::fprintf(stderr, "[%s] wall-clock %.2fs (jobs=%u)\n",
                 name_.c_str(), seconds, jobs());
    recordBenchTiming(name_, seconds, jobs());
}

void
recordBenchTiming(const std::string &name, double wallSeconds,
                  unsigned jobs)
{
    // Sub-0.1s runs (bench_table1 replays recorded tables in
    // microseconds) would truncate to "0.000" at fixed 3-decimal
    // precision; widen until the measurement keeps real digits.
    const int precision = wallSeconds >= 0.1 ? 3 : 6;
    std::ostringstream value;
    value << "{\"wall_seconds\": "
          << stats::formatDouble(wallSeconds, precision)
          << ", \"jobs\": " << jobs << "}";
    recordBenchEntry(name, value.str());
}

void
recordBenchEntry(const std::string &name, const std::string &json)
{
    const char *path = "BENCH_pipeline.json";

    // Keep other benches' entries: the file is one flat object with
    // one `"bench": {...}` line per bench.
    std::map<std::string, std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t q0 = line.find('"');
        if (q0 == std::string::npos)
            continue;
        const std::size_t q1 = line.find('"', q0 + 1);
        const std::size_t b0 = line.find('{', q1);
        const std::size_t b1 = line.rfind('}');
        if (q1 == std::string::npos || b0 == std::string::npos ||
            b1 == std::string::npos || b1 < b0)
            continue;
        entries[line.substr(q0 + 1, q1 - q0 - 1)] =
            line.substr(b0, b1 - b0 + 1);
    }
    in.close();

    entries[name] = json;

    std::ofstream out(path, std::ios::trunc);
    out << "{\n";
    std::size_t i = 0;
    for (const auto &[bench, json] : entries) {
        out << "  \"" << bench << "\": " << json;
        out << (++i == entries.size() ? "\n" : ",\n");
    }
    out << "}\n";
}

std::vector<AppCase>
singleTierApps()
{
    return {
        {"Memcached", apps::memcachedSpec(), apps::memcachedLoad()},
        {"NGINX", apps::nginxSpec(), apps::nginxLoad()},
        {"MongoDB", apps::mongodbSpec(), apps::mongodbLoad()},
        {"Redis", apps::redisSpec(), apps::redisLoad()},
    };
}

RunResult
runSingleTier(const app::ServiceSpec &spec,
              const workload::LoadSpec &load,
              const hw::PlatformSpec &platform, sim::Time warm,
              sim::Time measure, std::uint64_t seed)
{
    app::Deployment dep(seed);
    os::Machine &machine = dep.addMachine("node", platform);
    app::ServiceInstance &svc = dep.deploy(spec, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, seed ^ 0x10ad);
    gen.start();
    dep.runFor(warm);
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(measure);

    RunResult result;
    result.report = profile::snapshotService(svc);
    profile::overrideLatency(result.report, gen.latency());
    result.clientLatency = gen.latency();
    result.achievedQps = gen.achievedQps();
    return result;
}

SnRunResult
runSocialNetwork(const std::vector<app::ServiceSpec> &tiers,
                 const std::string &rootName,
                 const workload::LoadSpec &load,
                 const hw::PlatformSpec &platform, sim::Time warm,
                 sim::Time measure, std::uint64_t seed)
{
    app::Deployment dep(seed);
    os::Machine &machine = dep.addMachine("node", platform);
    for (const app::ServiceSpec &tier : tiers)
        dep.deploy(tier, machine);
    dep.wireAll();
    app::ServiceInstance *root = dep.find(rootName);
    workload::LoadGen gen(dep, *root, load, seed ^ 0x10ad);
    gen.start();
    dep.runFor(warm);
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(measure);

    SnRunResult result;
    for (const app::ServiceSpec &tier : tiers) {
        app::ServiceInstance *svc = dep.find(tier.name);
        if (svc)
            result.tiers[tier.name] = profile::snapshotService(*svc);
    }
    result.clientLatency = gen.latency();
    result.achievedQps = gen.achievedQps();
    return result;
}

core::CloneResult
cloneSingleTier(const AppCase &app, bool fineTune, std::uint64_t seed,
                sim::RunExecutor *executor)
{
    app::Deployment dep(seed);
    os::Machine &machine = dep.addMachine("node", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(app.spec, machine);
    dep.wireAll();
    const workload::LoadSpec load = app.load.at(app.load.mediumQps);
    workload::LoadGen gen(dep, svc, load, seed ^ 0x10ad);
    gen.start();

    core::CloneOptions opts;
    opts.fineTune = fineTune;
    opts.executor = executor;
    opts.profiling.warmup = sim::milliseconds(150);
    opts.profiling.window = sim::milliseconds(120);
    return core::cloneService(dep, svc, load, hw::platformA(), opts);
}

core::TopologyCloneResult
cloneSocialNetwork(std::uint64_t seed, sim::RunExecutor *executor)
{
    app::Deployment dep(seed);
    os::Machine &machine = dep.addMachine("node", hw::platformA());
    const auto tiers = apps::socialNetworkSpecs();
    for (const app::ServiceSpec &tier : tiers)
        dep.deploy(tier, machine);
    dep.wireAll();
    app::ServiceInstance *root =
        dep.find(apps::socialNetworkFrontend());
    const auto load = apps::socialNetworkLoad();
    workload::LoadGen gen(dep, *root, load.at(load.mediumQps * 0.6),
                          seed ^ 0x10ad);
    gen.start();
    dep.runFor(sim::milliseconds(120));

    core::CloneOptions opts;
    opts.fineTune = true;  // per-tier calibration in sandboxes
    opts.executor = executor;
    opts.maxTuneIterations = 4;
    opts.tuneTolerance = 0.08;
    opts.tuneWarmup = sim::milliseconds(100);
    opts.tuneWindow = sim::milliseconds(150);
    opts.profiling.warmup = sim::milliseconds(40);
    opts.profiling.window = sim::milliseconds(80);

    std::vector<std::string> names;
    for (const app::ServiceSpec &tier : tiers)
        names.push_back(tier.name);
    return core::cloneTopology(dep, names, load.connections, opts);
}

workload::LoadSpec
socialCloneLoad(double qps)
{
    return core::cloneLoadSpec(apps::socialNetworkLoad().at(qps));
}

std::string
cell(double v, int precision)
{
    return stats::formatDouble(v, precision);
}

void
addMetricRows(stats::TablePrinter &table, const std::string &tag,
              const profile::PerfReport &orig,
              const profile::PerfReport &synth)
{
    auto row = [&](const std::string &metric, double a, double s,
                   int precision = 3) {
        table.addRow({tag, metric, cell(a, precision),
                      cell(s, precision),
                      stats::formatPercent(
                          profile::relativeError(s, a), 1)});
    };
    row("IPC", orig.ipc, synth.ipc);
    row("BranchMiss", orig.branchMispredictRate,
        synth.branchMispredictRate, 4);
    row("L1i miss", orig.l1iMissRate, synth.l1iMissRate);
    row("L1d miss", orig.l1dMissRate, synth.l1dMissRate);
    row("L2 miss", orig.l2MissRate, synth.l2MissRate);
    row("LLC miss", orig.llcMissRate, synth.llcMissRate);
    row("Net MB/s", orig.netBandwidthBytesPerSec / 1e6,
        synth.netBandwidthBytesPerSec / 1e6, 1);
    if (orig.diskBandwidthBytesPerSec > 1e5 ||
        synth.diskBandwidthBytesPerSec > 1e5) {
        row("Disk MB/s", orig.diskBandwidthBytesPerSec / 1e6,
            synth.diskBandwidthBytesPerSec / 1e6, 1);
    }
}

void
ErrorAccumulator::record(const std::string &metric, double orig,
                         double synth, double denomFloor)
{
    // Rates near zero would explode a pure relative error; floor the
    // denominator so "0.1% vs 0.4% LLC misses" is a small error, as
    // in the paper's percentage-point comparisons.
    auto &[sum, count] = sums_[metric];
    sum += std::abs(synth - orig) / std::max(orig, denomFloor);
    count += 1;
}

void
ErrorAccumulator::add(const profile::PerfReport &orig,
                      const profile::PerfReport &synth)
{
    record("IPC", orig.ipc, synth.ipc, 0.05);
    record("Branch", orig.branchMispredictRate,
           synth.branchMispredictRate, 0.01);
    record("L1i", orig.l1iMissRate, synth.l1iMissRate, 0.02);
    record("L1d", orig.l1dMissRate, synth.l1dMissRate, 0.02);
    record("L2", orig.l2MissRate, synth.l2MissRate, 0.05);
    record("LLC", orig.llcMissRate, synth.llcMissRate, 0.05);
    record("NetBW", orig.netBandwidthBytesPerSec,
           synth.netBandwidthBytesPerSec, 1e6);
    if (orig.diskBandwidthBytesPerSec > 1e5) {
        record("DiskBW", orig.diskBandwidthBytesPerSec,
               synth.diskBandwidthBytesPerSec, 1e6);
    }
}

void
ErrorAccumulator::print(std::ostream &os) const
{
    stats::TablePrinter table({"metric", "avg error"});
    for (const auto &[metric, entry] : sums_) {
        table.addRow({metric,
                      stats::formatPercent(
                          entry.first / std::max(1, entry.second),
                          1)});
    }
    stats::printBanner(os,
                       "Average clone error per metric (Sec. 6.2.1)");
    table.print(os);
}

} // namespace ditto::bench
