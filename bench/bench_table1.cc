/**
 * @file
 * Table 1: server platform specifications. Prints the configured
 * machine models A/B/C and sanity-checks the derived microarch
 * parameters the rest of the benchmarks rely on.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "hw/platform.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace ditto;

    bench::BenchRuntime rt(argc, argv, "bench_table1");

    stats::printBanner(std::cout,
                       "Table 1: Server platform specifications");

    stats::TablePrinter table(
        {"", "Platform A", "Platform B", "Platform C"});
    const hw::PlatformSpec specs[] = {hw::platformA(), hw::platformB(),
                                      hw::platformC()};

    auto row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (const auto &p : specs)
            cells.push_back(getter(p));
        table.addRow(cells);
    };

    row("CPU model",
        [](const hw::PlatformSpec &p) { return p.cpuModel; });
    row("Base frequency", [](const hw::PlatformSpec &p) {
        return stats::formatDouble(p.baseFrequencyGhz, 2) + "GHz";
    });
    row("CPU cores", [](const hw::PlatformSpec &p) {
        return std::to_string(p.coresPerSocket);
    });
    row("CPU family",
        [](const hw::PlatformSpec &p) { return p.cpuFamily; });
    row("Sockets", [](const hw::PlatformSpec &p) {
        return std::to_string(p.sockets);
    });
    row("L1i/L1d", [](const hw::PlatformSpec &p) {
        return stats::formatBytes(static_cast<double>(p.l1iBytes)) +
            "/" + stats::formatBytes(static_cast<double>(p.l1dBytes));
    });
    row("L2", [](const hw::PlatformSpec &p) {
        return stats::formatBytes(static_cast<double>(p.l2Bytes));
    });
    row("LLC", [](const hw::PlatformSpec &p) {
        return stats::formatBytes(static_cast<double>(p.llcBytes));
    });
    row("RAM", [](const hw::PlatformSpec &p) {
        return stats::formatBytes(static_cast<double>(p.ramBytes)) +
            "@" + std::to_string(p.ramMhz);
    });
    row("Disk", [](const hw::PlatformSpec &p) {
        return stats::formatBytes(static_cast<double>(p.diskBytes)) +
            (p.disk == hw::DiskKind::Ssd ? " SSD" : " HDD");
    });
    row("Network", [](const hw::PlatformSpec &p) {
        return stats::formatDouble(p.nicGbps, 0) + "Gbe";
    });
    table.addSeparator();
    row("(model) issue width", [](const hw::PlatformSpec &p) {
        return std::to_string(p.issueWidth);
    });
    row("(model) mispredict penalty", [](const hw::PlatformSpec &p) {
        return std::to_string(p.mispredictPenalty) + " cyc";
    });
    row("(model) mem latency", [](const hw::PlatformSpec &p) {
        return std::to_string(p.latency.memory) + " cyc";
    });
    table.print(std::cout);
    return 0;
}
