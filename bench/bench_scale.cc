/**
 * @file
 * Ten-thousand-service scale benchmark for the cluster subsystem.
 *
 * Sweeps synthetic layered topologies (cluster/topo_gen.h) from 10 to
 * 10,000 services, drives the root with an open-loop client, and runs
 * the autoscaler on the root's hottest downstream group. Per size it
 * reports topology shape, delivered load, executed simulation events,
 * end-to-end p95, and the autoscaler's actions; wall-clock and
 * per-event ns go to stderr and BENCH_pipeline.json (the
 * "scale_per_event_ns" entry). The sweep fans out on the RunExecutor
 * and all stdout is printed after the ordered join, so output is
 * byte-identical at any --jobs (and, because both timer backends
 * execute events in the same order, byte-identical under
 * DITTO_EVENT_QUEUE=heap).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "bench/bench_common.h"
#include "cluster/autoscaler.h"
#include "cluster/replica_set.h"
#include "cluster/topo_gen.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

struct ScaleCase
{
    unsigned services;
    unsigned depth;
    unsigned machines;
    double qps;
    sim::Time warm;
    sim::Time measure;
    /**
     * Generate with production characteristics: multiple entry
     * queries, shared stateful backends, heavy-tailed fan-out, and
     * diamond dependencies (topo_gen's shape knobs).
     */
    bool prod = false;
};

struct ScaleRow
{
    unsigned services = 0;
    std::size_t edges = 0;
    unsigned machines = 0;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    double p95Ms = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    std::size_t replicas = 0;
    /** Simulation events executed (deterministic, printed). */
    std::uint64_t events = 0;
    double wallSeconds = 0;
    /** Wall-clock of the event-execution phase only (warm+measure). */
    double simSeconds = 0;
};

ScaleRow
runScaleCase(const ScaleCase &sc)
{
    const auto wallStart = std::chrono::steady_clock::now();

    cluster::TopoSpec topo;
    topo.services = sc.services;
    topo.depth = sc.depth;
    topo.seed = 42;
    if (sc.prod) {
        topo.endpointsPerService = 2;
        topo.sharedBackends = 3;
        topo.fanoutTailAlpha = 1.2;
        topo.diamondProbability = 0.35;
    }
    const cluster::GeneratedTopology gen =
        cluster::generateTopology(topo);

    app::Deployment dep(1234, /*traceSampleRate=*/0.05);
    app::ServiceInstance &root =
        cluster::deployTopology(dep, gen, sc.machines);

    obs::MetricsRegistry metrics;
    obs::registerDeploymentMetrics(metrics, dep);

    // Autoscale the root's first downstream: every request hits it,
    // making it the natural hot spot of the layered topology.
    const std::string hot = root.spec().downstreams.front();
    cluster::Placer placer;
    for (const auto &m : dep.machines())
        placer.addMachine(*m, 4);
    cluster::ReplicaSet set(dep, hot, placer, &metrics);
    cluster::AutoscalerSpec as;
    as.period = sim::milliseconds(5);
    as.cooldown = sim::milliseconds(15);
    as.queueHigh = 1.5;
    as.queueLow = 0.25;
    as.maxReplicas = 4;
    cluster::Autoscaler scaler(dep, set, metrics, as);
    scaler.start();

    workload::LoadSpec load;
    load.qps = sc.qps;
    load.connections = 8;
    load.openLoop = true;
    load.timeout = sim::milliseconds(20);
    if (sc.prod) {
        // Hit both entry queries of the production-shaped root.
        load.endpoints = {workload::EndpointLoad{0, 0.7, 64, 64},
                          workload::EndpointLoad{1, 0.3, 64, 64}};
    }
    workload::LoadGen gen2(dep, root, load, 91);

    const auto simStart = std::chrono::steady_clock::now();
    gen2.start();
    dep.runFor(sc.warm);
    dep.beginMeasureAll();
    dep.runFor(sc.measure);
    const double simSeconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  simStart)
                                  .count();

    ScaleRow row;
    row.services = sc.services;
    row.edges = gen.edges;
    row.machines = sc.machines;
    row.sent = gen2.sent();
    row.completed = gen2.completed();
    row.p95Ms = static_cast<double>(gen2.latency().percentile(0.95)) /
        1e6;
    row.scaleUps = scaler.stats().scaleUps;
    row.scaleDowns = scaler.stats().scaleDowns;
    row.replicas = set.active();
    row.events = dep.events().executedCount();
    row.simSeconds = simSeconds;
    row.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "scale");

    const std::vector<ScaleCase> cases = {
        {10, 3, 2, 3000, sim::milliseconds(40), sim::milliseconds(80)},
        {100, 4, 4, 1200, sim::milliseconds(40),
         sim::milliseconds(80)},
        {1000, 6, 8, 600, sim::milliseconds(20),
         sim::milliseconds(40)},
        // Production shapes: shared backends, heavy-tailed fan-out,
        // diamonds, and a second entry query per service.
        {500, 5, 4, 800, sim::milliseconds(20), sim::milliseconds(40),
         /*prod=*/true},
        {10000, 8, 16, 300, sim::milliseconds(10),
         sim::milliseconds(20)},
    };

    std::vector<std::function<ScaleRow()>> tasks;
    for (const ScaleCase &sc : cases)
        tasks.push_back([sc] { return runScaleCase(sc); });
    const std::vector<ScaleRow> rows =
        rt.executor().runOrdered<ScaleRow>(std::move(tasks));

    std::printf("# bench_scale: layered topologies under autoscaling\n");
    std::printf("%8s %6s %8s %9s %10s %11s %8s %5s %5s %9s\n",
                "services", "edges", "machines", "sent", "completed",
                "events", "p95_ms", "up", "down", "replicas");
    std::string perEvent = "{";
    for (const ScaleRow &r : rows) {
        std::printf(
            "%8u %6zu %8u %9llu %10llu %11llu %8.3f %5llu %5llu %9zu\n",
            r.services, r.edges, r.machines,
            static_cast<unsigned long long>(r.sent),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.events), r.p95Ms,
            static_cast<unsigned long long>(r.scaleUps),
            static_cast<unsigned long long>(r.scaleDowns),
            r.replicas);
        // Wall-derived numbers go to stderr/JSON only: stdout must
        // stay byte-identical across machines and worker counts.
        // Per-event cost uses the execution phase alone, so it is not
        // swamped by topology construction at the 10k size.
        const double perEventNs = r.events
            ? r.simSeconds * 1e9 / static_cast<double>(r.events)
            : 0;
        std::fprintf(stderr,
                     "[scale %u] wall %.2fs (sim %.2fs), "
                     "%.1f ns/event (%llu events)\n",
                     r.services, r.wallSeconds, r.simSeconds,
                     perEventNs,
                     static_cast<unsigned long long>(r.events));
        char cell[64];
        std::snprintf(cell, sizeof cell, "%s\"%u\": %.1f",
                      perEvent.size() > 1 ? ", " : "", r.services,
                      perEventNs);
        perEvent += cell;
    }
    perEvent += "}";
    bench::recordBenchEntry("scale_per_event_ns", perEvent);

    rt.finish();
    return 0;
}
