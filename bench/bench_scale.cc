/**
 * @file
 * Thousand-service scale benchmark for the cluster subsystem.
 *
 * Sweeps synthetic layered topologies (cluster/topo_gen.h) from 10 to
 * 1000 services, drives the root with an open-loop client, and runs
 * the autoscaler on the root's hottest downstream group. Per size it
 * reports topology shape, delivered load, end-to-end p95, and the
 * autoscaler's actions; wall-clock per size goes to stderr and
 * BENCH_pipeline.json. The sweep fans out on the RunExecutor and all
 * stdout is printed after the ordered join, so output is
 * byte-identical at any --jobs.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "bench/bench_common.h"
#include "cluster/autoscaler.h"
#include "cluster/replica_set.h"
#include "cluster/topo_gen.h"
#include "obs/metrics.h"
#include "obs/register.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

struct ScaleCase
{
    unsigned services;
    unsigned depth;
    unsigned machines;
    double qps;
    sim::Time warm;
    sim::Time measure;
};

struct ScaleRow
{
    unsigned services = 0;
    std::size_t edges = 0;
    unsigned machines = 0;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    double p95Ms = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    std::size_t replicas = 0;
    double wallSeconds = 0;
};

ScaleRow
runScaleCase(const ScaleCase &sc)
{
    const auto wallStart = std::chrono::steady_clock::now();

    cluster::TopoSpec topo;
    topo.services = sc.services;
    topo.depth = sc.depth;
    topo.seed = 42;
    const cluster::GeneratedTopology gen =
        cluster::generateTopology(topo);

    app::Deployment dep(1234, /*traceSampleRate=*/0.05);
    app::ServiceInstance &root =
        cluster::deployTopology(dep, gen, sc.machines);

    obs::MetricsRegistry metrics;
    obs::registerDeploymentMetrics(metrics, dep);

    // Autoscale the root's first downstream: every request hits it,
    // making it the natural hot spot of the layered topology.
    const std::string hot = root.spec().downstreams.front();
    cluster::Placer placer;
    for (const auto &m : dep.machines())
        placer.addMachine(*m, 4);
    cluster::ReplicaSet set(dep, hot, placer, &metrics);
    cluster::AutoscalerSpec as;
    as.period = sim::milliseconds(5);
    as.cooldown = sim::milliseconds(15);
    as.queueHigh = 1.5;
    as.queueLow = 0.25;
    as.maxReplicas = 4;
    cluster::Autoscaler scaler(dep, set, metrics, as);
    scaler.start();

    workload::LoadSpec load;
    load.qps = sc.qps;
    load.connections = 8;
    load.openLoop = true;
    load.timeout = sim::milliseconds(20);
    workload::LoadGen gen2(dep, root, load, 91);

    gen2.start();
    dep.runFor(sc.warm);
    dep.beginMeasureAll();
    dep.runFor(sc.measure);

    ScaleRow row;
    row.services = sc.services;
    row.edges = gen.edges;
    row.machines = sc.machines;
    row.sent = gen2.sent();
    row.completed = gen2.completed();
    row.p95Ms = static_cast<double>(gen2.latency().percentile(0.95)) /
        1e6;
    row.scaleUps = scaler.stats().scaleUps;
    row.scaleDowns = scaler.stats().scaleDowns;
    row.replicas = set.active();
    row.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRuntime rt(argc, argv, "scale");

    const std::vector<ScaleCase> cases = {
        {10, 3, 2, 3000, sim::milliseconds(40), sim::milliseconds(80)},
        {100, 4, 4, 1200, sim::milliseconds(40),
         sim::milliseconds(80)},
        {1000, 6, 8, 600, sim::milliseconds(20),
         sim::milliseconds(40)},
    };

    std::vector<std::function<ScaleRow()>> tasks;
    for (const ScaleCase &sc : cases)
        tasks.push_back([sc] { return runScaleCase(sc); });
    const std::vector<ScaleRow> rows =
        rt.executor().runOrdered<ScaleRow>(std::move(tasks));

    std::printf("# bench_scale: layered topologies under autoscaling\n");
    std::printf("%8s %6s %8s %9s %10s %8s %5s %5s %9s\n", "services",
                "edges", "machines", "sent", "completed", "p95_ms",
                "up", "down", "replicas");
    for (const ScaleRow &r : rows) {
        std::printf("%8u %6zu %8u %9llu %10llu %8.3f %5llu %5llu %9zu\n",
                    r.services, r.edges, r.machines,
                    static_cast<unsigned long long>(r.sent),
                    static_cast<unsigned long long>(r.completed),
                    r.p95Ms,
                    static_cast<unsigned long long>(r.scaleUps),
                    static_cast<unsigned long long>(r.scaleDowns),
                    r.replicas);
        std::fprintf(stderr, "[scale %u] wall %.2fs\n", r.services,
                     r.wallSeconds);
    }

    rt.finish();
    return 0;
}
