/**
 * @file
 * Fig. 8: top-down CPI breakdown (retiring / frontend / bad
 * speculation / backend), actual vs synthetic, for all six services
 * at medium load on Platform A.
 *
 * Clones and measured runs fan out on the RunExecutor and join in
 * submission order (byte-identical tables at any `--jobs` value).
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void
addBreakdownRows(stats::TablePrinter &table, const std::string &name,
                 const profile::PerfReport &r, const char *tag)
{
    table.addRow({name, tag, cell(r.cpi, 3),
                  stats::formatPercent(r.retiringFrac, 1),
                  stats::formatPercent(r.frontendFrac, 1),
                  stats::formatPercent(r.badSpecFrac, 1),
                  stats::formatPercent(r.backendFrac, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig8");
    sim::RunExecutor &ex = rt.executor();
    const hw::PlatformSpec platform = hw::platformA();

    stats::printBanner(
        std::cout,
        "Fig. 8: top-down cycles breakdown, actual (A) vs "
        "synthetic (S), medium load");

    std::cout << "cloning the four single-tier apps and the social "
                 "network...\n";
    const std::vector<AppCase> apps = singleTierApps();
    auto snFuture =
        ex.submit([&ex] { return cloneSocialNetwork(80, &ex); });
    std::vector<std::function<core::CloneResult()>> cloneTasks;
    for (const AppCase &app : apps) {
        cloneTasks.push_back(
            [&app, &ex] { return cloneSingleTier(app, true, 79, &ex); });
    }
    const std::vector<core::CloneResult> clones =
        ex.runOrdered<core::CloneResult>(std::move(cloneTasks));
    const core::TopologyCloneResult snClone =
        ex.collect(std::move(snFuture));

    const auto snLoad = apps::socialNetworkLoad();
    std::vector<std::function<RunResult()>> runTasks;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppCase &app = apps[i];
        const core::CloneResult &clone = clones[i];
        runTasks.push_back([&app, &platform] {
            return runSingleTier(app.spec,
                                 app.load.at(app.load.mediumQps),
                                 platform);
        });
        runTasks.push_back([&app, &clone, &platform] {
            return runSingleTier(
                clone.spec,
                core::cloneLoadSpec(app.load.at(app.load.mediumQps)),
                platform);
        });
    }

    auto snOrigFuture = ex.submit([&snLoad, &platform] {
        return runSocialNetwork(apps::socialNetworkSpecs(),
                                apps::socialNetworkFrontend(),
                                snLoad.at(snLoad.mediumQps), platform);
    });
    auto snSynthFuture = ex.submit([&snClone, &snLoad, &platform] {
        return runSocialNetwork(snClone.specs, snClone.rootClone,
                                socialCloneLoad(snLoad.mediumQps),
                                platform);
    });
    const std::vector<RunResult> runs =
        ex.runOrdered<RunResult>(std::move(runTasks));
    const SnRunResult orig = ex.collect(std::move(snOrigFuture));
    const SnRunResult synth = ex.collect(std::move(snSynthFuture));

    stats::TablePrinter table({"service", "", "CPI", "retiring",
                               "front-end", "bad spec", "back-end"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        addBreakdownRows(table, apps[i].name, runs[2 * i].report, "A");
        addBreakdownRows(table, "", runs[2 * i + 1].report, "S");
        table.addSeparator();
    }
    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        addBreakdownRows(table, pretty, orig.tiers.at(tier), "A");
        addBreakdownRows(table, "",
                         synth.tiers.at(std::string(tier) + "_clone"),
                         "S");
        table.addSeparator();
    }

    table.print(std::cout);
    return 0;
}
