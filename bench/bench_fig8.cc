/**
 * @file
 * Fig. 8: top-down CPI breakdown (retiring / frontend / bad
 * speculation / backend), actual vs synthetic, for all six services
 * at medium load on Platform A.
 */

#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void
addBreakdownRows(stats::TablePrinter &table, const std::string &name,
                 const profile::PerfReport &r, const char *tag)
{
    table.addRow({name, tag, cell(r.cpi, 3),
                  stats::formatPercent(r.retiringFrac, 1),
                  stats::formatPercent(r.frontendFrac, 1),
                  stats::formatPercent(r.badSpecFrac, 1),
                  stats::formatPercent(r.backendFrac, 1)});
}

} // namespace

int
main()
{
    const hw::PlatformSpec platform = hw::platformA();

    stats::printBanner(
        std::cout,
        "Fig. 8: top-down cycles breakdown, actual (A) vs "
        "synthetic (S), medium load");

    stats::TablePrinter table({"service", "", "CPI", "retiring",
                               "front-end", "bad spec", "back-end"});

    for (const AppCase &app : singleTierApps()) {
        std::cout << "-- " << app.name << "...\n";
        const core::CloneResult clone = cloneSingleTier(app, true);
        const RunResult orig = runSingleTier(
            app.spec, app.load.at(app.load.mediumQps), platform);
        const RunResult synth = runSingleTier(
            clone.spec,
            core::cloneLoadSpec(app.load.at(app.load.mediumQps)),
            platform);
        addBreakdownRows(table, app.name, orig.report, "A");
        addBreakdownRows(table, "", synth.report, "S");
        table.addSeparator();
    }

    std::cout << "-- Social Network tiers...\n";
    const core::TopologyCloneResult snClone = cloneSocialNetwork();
    const auto snLoad = apps::socialNetworkLoad();
    const SnRunResult orig = runSocialNetwork(
        apps::socialNetworkSpecs(), apps::socialNetworkFrontend(),
        snLoad.at(snLoad.mediumQps), platform);
    const SnRunResult synth = runSocialNetwork(
        snClone.specs, snClone.rootClone,
        socialCloneLoad(snLoad.mediumQps), platform);
    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        addBreakdownRows(table, pretty, orig.tiers.at(tier), "A");
        addBreakdownRows(table, "",
                         synth.tiers.at(std::string(tier) + "_clone"),
                         "S");
        table.addSeparator();
    }

    table.print(std::cout);
    return 0;
}
