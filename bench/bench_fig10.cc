/**
 * @file
 * Fig. 10: interference impact on NGINX. The original is profiled in
 * isolation; then both original and clone run next to stressors --
 * hyperthread (same physical core), L1d, L2 (SMT sibling), LLC
 * (shared socket), and network bandwidth (iperf3-style) -- and must
 * degrade the same way (IPC, p99, per-level miss rates).
 *
 * Every (stress case x {actual, synthetic}) run builds its own
 * deployment, so the twelve runs fan out on the RunExecutor and join
 * in submission order.
 */

#include <functional>
#include <iostream>
#include <memory>
#include <optional>

#include "bench/bench_common.h"
#include "workload/stressor.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

struct StressCase
{
    const char *name;
    std::optional<workload::StressKind> cache;
    double netHogGbps = 0;
};

RunResult
runWithStress(const app::ServiceSpec &spec,
              const workload::LoadSpec &load, const StressCase &sc)
{
    app::Deployment dep(101);
    os::Machine &machine = dep.addMachine("node", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(spec, machine);
    dep.wireAll();

    // NGINX's single worker lands on core 0 (first primary slot);
    // HT/L1d/L2 stressors pin to its SMT sibling, the LLC stressor
    // to another physical core on the shared socket.
    std::unique_ptr<workload::CacheStressor> stressor;
    std::unique_ptr<workload::NetStressor> netHog;
    if (sc.cache) {
        const int core =
            *sc.cache == workload::StressKind::Llc ? 4 : 1;
        stressor = std::make_unique<workload::CacheStressor>(
            machine, *sc.cache, core);
    }
    if (sc.netHogGbps > 0) {
        netHog = std::make_unique<workload::NetStressor>(
            machine, sc.netHogGbps);
    }

    workload::LoadGen gen(dep, svc, load, 7);
    gen.start();
    dep.runFor(sim::milliseconds(200));
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(300));
    RunResult result;
    result.report = profile::snapshotService(svc);
    profile::overrideLatency(result.report, gen.latency());
    result.clientLatency = gen.latency();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig10");
    sim::RunExecutor &ex = rt.executor();
    const AppCase nginx{"NGINX", apps::nginxSpec(), apps::nginxLoad()};
    const workload::LoadSpec load =
        nginx.load.at(nginx.load.mediumQps);

    std::cout << "Cloning NGINX (profiled in isolation)...\n";
    const core::CloneResult clone = cloneSingleTier(nginx, true, 79, &ex);
    const workload::LoadSpec cloneLoad = core::cloneLoadSpec(load);

    const StressCase cases[] = {
        {"Orig.", std::nullopt, 0},
        {"HT", workload::StressKind::Cpu, 0},
        {"L1d", workload::StressKind::L1d, 0},
        {"L2", workload::StressKind::L2, 0},
        {"LLC", workload::StressKind::Llc, 0},
        {"Net", std::nullopt, 9.0},
    };

    stats::printBanner(
        std::cout,
        "Fig. 10: interference impact on NGINX (actual vs synthetic)");

    std::vector<std::function<RunResult()>> tasks;
    for (const StressCase &sc : cases) {
        tasks.push_back([&nginx, &load, &sc] {
            return runWithStress(nginx.spec, load, sc);
        });
        tasks.push_back([&clone, &cloneLoad, &sc] {
            return runWithStress(clone.spec, cloneLoad, sc);
        });
    }
    const std::vector<RunResult> runs =
        ex.runOrdered<RunResult>(std::move(tasks));

    stats::TablePrinter table({"stress", "", "IPC", "p99 (ms)",
                               "L1i miss", "L1d miss", "L2 miss",
                               "LLC miss"});
    std::size_t runIdx = 0;
    for (const StressCase &sc : cases) {
        std::cout << "  " << sc.name << "...\n";
        const RunResult &orig = runs[runIdx++];
        const RunResult &synth = runs[runIdx++];
        auto add = [&](const char *tag, const profile::PerfReport &r) {
            table.addRow({tag == std::string("A") ? sc.name : "", tag,
                          cell(r.ipc, 3), cell(r.p99LatencyMs, 3),
                          stats::formatPercent(r.l1iMissRate, 1),
                          stats::formatPercent(r.l1dMissRate, 1),
                          stats::formatPercent(r.l2MissRate, 1),
                          stats::formatPercent(r.llcMissRate, 1)});
        };
        add("A", orig.report);
        add("S", synth.report);
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}
