/**
 * @file
 * Fig. 7: validation across platforms. Every application is profiled
 * ONLY on Platform A; the same clone spec is then deployed on
 * Platforms A, B and C at medium load, next to the original. The
 * clone must react to the platform change (smaller L2, older core,
 * HDD vs SSD, 1Gbe vs 10Gbe) the same way the original does.
 */

#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int
main()
{
    const hw::PlatformSpec platforms[] = {
        hw::platformA(), hw::platformB(), hw::platformC()};
    ErrorAccumulator errors;

    stats::printBanner(
        std::cout,
        "Fig. 7: cross-platform validation (profiled on A only, "
        "medium load)");

    for (const AppCase &app : singleTierApps()) {
        std::cout << "\n-- " << app.name << ": cloning on A...\n";
        const core::CloneResult clone = cloneSingleTier(app, true);

        stats::TablePrinter table(
            {"platform", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"platform", "actual avg/p99 (ms)", "synth avg/p99 (ms)"});

        for (const auto &platform : platforms) {
            const RunResult orig = runSingleTier(
                app.spec, app.load.at(app.load.mediumQps), platform);
            const RunResult synth = runSingleTier(
                clone.spec,
                core::cloneLoadSpec(app.load.at(app.load.mediumQps)),
                platform);
            addMetricRows(table, platform.name, orig.report,
                          synth.report);
            table.addSeparator();
            latTable.addRow(
                {platform.name,
                 cell(orig.report.avgLatencyMs, 3) + " / " +
                     cell(orig.report.p99LatencyMs, 3),
                 cell(synth.report.avgLatencyMs, 3) + " / " +
                     cell(synth.report.p99LatencyMs, 3)});
            errors.add(orig.report, synth.report);
        }
        stats::printBanner(std::cout, app.name + " (Fig. 7 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    // Social Network tiers across platforms.
    std::cout << "\n-- Social Network: cloning on A...\n";
    const core::TopologyCloneResult snClone = cloneSocialNetwork();
    const auto snLoad = apps::socialNetworkLoad();

    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        stats::TablePrinter table(
            {"platform", "metric", "actual", "synthetic", "err"});
        for (const auto &platform : platforms) {
            const SnRunResult orig = runSocialNetwork(
                apps::socialNetworkSpecs(),
                apps::socialNetworkFrontend(),
                snLoad.at(snLoad.mediumQps), platform);
            const SnRunResult synth = runSocialNetwork(
                snClone.specs, snClone.rootClone,
                socialCloneLoad(snLoad.mediumQps), platform);
            const auto &o = orig.tiers.at(tier);
            const auto &s =
                synth.tiers.at(std::string(tier) + "_clone");
            addMetricRows(table, platform.name, o, s);
            table.addSeparator();
            errors.add(o, s);
        }
        stats::printBanner(std::cout, pretty + " (Fig. 7 panel)");
        table.print(std::cout);
    }

    errors.print(std::cout);
    return 0;
}
