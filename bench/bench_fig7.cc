/**
 * @file
 * Fig. 7: validation across platforms. Every application is profiled
 * ONLY on Platform A; the same clone spec is then deployed on
 * Platforms A, B and C at medium load, next to the original. The
 * clone must react to the platform change (smaller L2, older core,
 * HDD vs SSD, 1Gbe vs 10Gbe) the same way the original does.
 *
 * Clones, then all (app x platform x variant) runs, fan out on the
 * RunExecutor; joined in submission order, so output is identical at
 * any `--jobs` value. The Social Network runs per platform are
 * computed once and reused for both reported tiers.
 */

#include <functional>
#include <iostream>

#include "bench/bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int
main(int argc, char **argv)
{
    BenchRuntime rt(argc, argv, "bench_fig7");
    sim::RunExecutor &ex = rt.executor();
    const hw::PlatformSpec platforms[] = {
        hw::platformA(), hw::platformB(), hw::platformC()};
    ErrorAccumulator errors;

    stats::printBanner(
        std::cout,
        "Fig. 7: cross-platform validation (profiled on A only, "
        "medium load)");

    // ---- phase 1: clone everything on Platform A ----------------------
    std::cout << "\ncloning the four single-tier apps and the social "
                 "network on A...\n";
    const std::vector<AppCase> apps = singleTierApps();
    auto snFuture =
        ex.submit([&ex] { return cloneSocialNetwork(80, &ex); });
    std::vector<std::function<core::CloneResult()>> cloneTasks;
    for (const AppCase &app : apps) {
        cloneTasks.push_back(
            [&app, &ex] { return cloneSingleTier(app, true, 79, &ex); });
    }
    const std::vector<core::CloneResult> clones =
        ex.runOrdered<core::CloneResult>(std::move(cloneTasks));
    const core::TopologyCloneResult snClone =
        ex.collect(std::move(snFuture));

    // ---- phase 2: every measured run ----------------------------------
    std::vector<std::function<RunResult()>> runTasks;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppCase &app = apps[i];
        const core::CloneResult &clone = clones[i];
        for (const hw::PlatformSpec &platform : platforms) {
            runTasks.push_back([&app, &platform] {
                return runSingleTier(app.spec,
                                     app.load.at(app.load.mediumQps),
                                     platform);
            });
            runTasks.push_back([&app, &clone, &platform] {
                return runSingleTier(
                    clone.spec,
                    core::cloneLoadSpec(app.load.at(app.load.mediumQps)),
                    platform);
            });
        }
    }

    const auto snLoad = apps::socialNetworkLoad();
    std::vector<std::function<SnRunResult()>> snTasks;
    for (const hw::PlatformSpec &platform : platforms) {
        snTasks.push_back([&snLoad, &platform] {
            return runSocialNetwork(apps::socialNetworkSpecs(),
                                    apps::socialNetworkFrontend(),
                                    snLoad.at(snLoad.mediumQps),
                                    platform);
        });
        snTasks.push_back([&snClone, &snLoad, &platform] {
            return runSocialNetwork(snClone.specs, snClone.rootClone,
                                    socialCloneLoad(snLoad.mediumQps),
                                    platform);
        });
    }

    auto snRunsFuture = ex.submit(
        [&ex, &snTasks]() -> std::vector<SnRunResult> {
            return ex.runOrdered<SnRunResult>(std::move(snTasks));
        });
    const std::vector<RunResult> runs =
        ex.runOrdered<RunResult>(std::move(runTasks));
    const std::vector<SnRunResult> snRuns =
        ex.collect(std::move(snRunsFuture));

    // ---- phase 3: tables ----------------------------------------------
    std::size_t runIdx = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppCase &app = apps[i];
        stats::TablePrinter table(
            {"platform", "metric", "actual", "synthetic", "err"});
        stats::TablePrinter latTable(
            {"platform", "actual avg/p99 (ms)", "synth avg/p99 (ms)"});

        for (const hw::PlatformSpec &platform : platforms) {
            const RunResult &orig = runs[runIdx++];
            const RunResult &synth = runs[runIdx++];
            addMetricRows(table, platform.name, orig.report,
                          synth.report);
            table.addSeparator();
            latTable.addRow(
                {platform.name,
                 cell(orig.report.avgLatencyMs, 3) + " / " +
                     cell(orig.report.p99LatencyMs, 3),
                 cell(synth.report.avgLatencyMs, 3) + " / " +
                     cell(synth.report.p99LatencyMs, 3)});
            errors.add(orig.report, synth.report);
        }
        stats::printBanner(std::cout, app.name + " (Fig. 7 panel)");
        table.print(std::cout);
        latTable.print(std::cout);
    }

    for (const char *tier : {"sn.text", "sn.socialgraph"}) {
        const std::string pretty = std::string(tier) == "sn.text"
            ? "TextService" : "SocialGraphService";
        stats::TablePrinter table(
            {"platform", "metric", "actual", "synthetic", "err"});
        for (std::size_t p = 0; p < std::size(platforms); ++p) {
            const SnRunResult &orig = snRuns[2 * p];
            const SnRunResult &synth = snRuns[2 * p + 1];
            const auto &o = orig.tiers.at(tier);
            const auto &s =
                synth.tiers.at(std::string(tier) + "_clone");
            addMetricRows(table, platforms[p].name, o, s);
            table.addSeparator();
            errors.add(o, s);
        }
        stats::printBanner(std::cout, pretty + " (Fig. 7 panel)");
        table.print(std::cout);
    }

    errors.print(std::cout);
    return 0;
}
