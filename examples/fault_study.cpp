/**
 * @file
 * Example: what does a mid-tier crash look like from the client?
 *
 * A three-tier slice of the social network (frontend -> compose ->
 * post-storage) runs under steady open-loop load while a FaultPlan
 * crashes the middle tier and warm-restarts it 40 ms later. We sample
 * client p99 latency and goodput in 10 ms windows and print the curve
 * twice: once with a naive frontend that waits forever, and once with
 * resilience policies (RPC deadlines, retries, a circuit breaker)
 * switched on. The resilient run fails fast and recovers as soon as
 * the tier is back; the naive one strands its workers on dead
 * connections for the whole outage.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "app/deployment.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

constexpr sim::Time kWindow = sim::milliseconds(10);
constexpr int kWindows = 20;
constexpr sim::Time kCrashAt = sim::milliseconds(60);
constexpr sim::Time kCrashFor = sim::milliseconds(40);

hw::CodeBlock
block(const std::string &label, std::uint64_t seed)
{
    hw::BlockSpec bs;
    bs.label = label;
    bs.instCount = 64;
    bs.seed = seed;
    return hw::buildBlock(bs);
}

/** frontend -> compose -> poststorage, one endpoint each. */
std::vector<app::ServiceSpec>
threeTier(const app::ResilienceSpec &resilience)
{
    app::ServiceSpec storage;
    storage.name = "sn.poststorage";
    storage.threads.workers = 2;
    storage.blocks.push_back(block("store.h", 3));
    app::EndpointSpec get;
    get.name = "get";
    get.handler.ops = {app::opCompute(0, 6)};
    storage.endpoints.push_back(get);

    app::ServiceSpec compose;
    compose.name = "sn.compose";
    compose.threads.workers = 2;
    compose.downstreams = {"sn.poststorage"};
    compose.blocks.push_back(block("compose.h", 4));
    app::EndpointSpec render;
    render.name = "render";
    render.handler.ops = {app::opCompute(0, 4),
                          app::opRpc(0, 0, 128, 512),
                          app::opCompute(0, 4)};
    compose.endpoints.push_back(render);
    compose.resilience = resilience;

    app::ServiceSpec frontend;
    frontend.name = "sn.frontend";
    frontend.threads.workers = 2;
    frontend.downstreams = {"sn.compose"};
    frontend.blocks.push_back(block("front.h", 5));
    app::EndpointSpec page;
    page.name = "page";
    page.handler.ops = {app::opCompute(0, 3),
                        app::opRpc(0, 0, 256, 1024),
                        app::opCompute(0, 3)};
    frontend.endpoints.push_back(page);
    frontend.resilience = resilience;

    return {storage, compose, frontend};
}

struct WindowSample
{
    double p99Ms;
    double goodput;
    bool crashed;  //!< window overlaps the outage
};

std::vector<WindowSample>
run(const app::ResilienceSpec &resilience)
{
    app::Deployment dep(47);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    for (const app::ServiceSpec &tier : threeTier(resilience))
        dep.deploy(tier, machine);
    dep.wireAll();

    workload::LoadSpec load;
    load.qps = 2500;
    load.connections = 6;
    load.openLoop = true;
    load.timeout = sim::milliseconds(8);
    workload::LoadGen gen(dep, *dep.find("sn.frontend"), load, 13);

    fault::FaultPlan plan;
    plan.serviceCrash("sn.compose", kCrashAt, kCrashFor);
    fault::FaultInjector injector(dep);
    injector.install(plan);

    gen.start();
    std::vector<WindowSample> samples;
    for (int i = 0; i < kWindows; ++i) {
        const sim::Time start = dep.events().now();
        gen.beginMeasure();
        dep.runFor(kWindow);
        WindowSample s;
        s.p99Ms =
            sim::toMilliseconds(gen.latency().percentile(0.99));
        s.goodput = gen.goodput();
        s.crashed = start + kWindow > kCrashAt &&
            start < kCrashAt + kCrashFor;
        samples.push_back(s);
    }
    return samples;
}

void
printCurve(const char *title, const std::vector<WindowSample> &s)
{
    std::printf("\n%s\n", title);
    std::printf("%8s | %8s | %8s | %s\n", "t(ms)", "p99(ms)",
                "goodput", "");
    for (int i = 0; i < static_cast<int>(s.size()); ++i) {
        const int bar = static_cast<int>(s[i].p99Ms * 8);
        std::printf("%8d | %8.2f | %8.0f | %s%.*s\n", i * 10,
                    s[i].p99Ms, s[i].goodput,
                    s[i].crashed ? "*" : " ",
                    bar > 48 ? 48 : bar,
                    "################################################");
    }
}

} // namespace

int
main()
{
    std::printf("Mid-tier crash study: sn.compose dies at %d ms, "
                "restarts at %d ms\n",
                static_cast<int>(sim::toMilliseconds(kCrashAt)),
                static_cast<int>(
                    sim::toMilliseconds(kCrashAt + kCrashFor)));
    std::printf("(windows overlapping the outage are marked *)\n");

    const app::ResilienceSpec naive;  // wait forever

    app::ResilienceSpec resilient;
    resilient.rpcDeadline = sim::milliseconds(2);
    resilient.retry.maxAttempts = 2;
    resilient.retry.baseBackoff = sim::microseconds(200);
    resilient.breaker.enabled = true;
    resilient.breaker.failureThreshold = 5;
    resilient.breaker.openDuration = sim::milliseconds(5);

    printCurve("naive frontend (no deadlines, no retries):",
               run(naive));
    printCurve("resilient frontend (2 ms deadline, 1 retry, "
               "circuit breaker):",
               run(resilient));

    std::printf("\nWith resilience the frontend sheds the outage as "
                "fast errors and\nrecovers within one window of the "
                "restart instead of stranding\nworkers on a dead "
                "tier.\n");
    return 0;
}
