/**
 * @file
 * Example: a system study on a clone instead of the original.
 *
 * A cloud provider wants to know how far it can scale down CPU
 * frequency for a latency-critical service without violating a 1 ms
 * p99 QoS -- but the hardware vendor running the study has no access
 * to the service's code. The provider ships a Ditto clone; the vendor
 * sweeps frequency on the clone and gets the same answer the
 * original would give (the paper's Fig. 11 use case).
 */

#include <cstdio>

#include "apps/catalog.h"
#include "core/ditto.h"
#include "hw/platform.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

double
p99AtFrequency(const app::ServiceSpec &spec,
               const workload::LoadSpec &load, double ghz)
{
    hw::PlatformSpec platform =
        hw::withCoresAndFrequency(hw::platformA(), 8, ghz);
    platform.smtEnabled = false;
    app::Deployment dep(31);
    os::Machine &machine = dep.addMachine("node0", platform);
    app::ServiceInstance &svc = dep.deploy(spec, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, 5);
    gen.start();
    dep.runFor(sim::milliseconds(200));
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(250));
    return sim::toMilliseconds(gen.latency().percentile(0.99));
}

} // namespace

int
main()
{
    constexpr double kQosMs = 2.0;
    const app::ServiceSpec original = apps::redisSpec();
    const apps::AppLoad load = apps::redisLoad();
    const workload::LoadSpec study = load.at(load.lowQps * 1.5);

    // The provider clones the service in-house...
    std::printf("Provider: cloning Redis for the vendor study...\n");
    app::Deployment dep(30);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(original, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, study, 5);
    gen.start();
    const core::CloneResult clone =
        core::cloneService(dep, svc, study, hw::platformA());

    // ...and the vendor sweeps frequency on the clone. We also run
    // the original here to show the answers agree.
    std::printf("\nVendor: frequency sweep at %d QPS (QoS: p99 <= "
                "%.1f ms)\n\n",
                static_cast<int>(study.qps), kQosMs);
    std::printf("%6s | %14s | %14s\n", "GHz", "original p99",
                "clone p99");
    double minGhzOriginal = 0;
    double minGhzClone = 0;
    for (double ghz : {2.1, 1.9, 1.7, 1.5, 1.3, 1.1}) {
        const double a = p99AtFrequency(original, study, ghz);
        const double s = p99AtFrequency(
            clone.spec, core::cloneLoadSpec(study), ghz);
        std::printf("%6.1f | %11.3f ms %s | %11.3f ms %s\n", ghz, a,
                    a <= kQosMs ? " " : "X", s,
                    s <= kQosMs ? " " : "X");
        if (a <= kQosMs)
            minGhzOriginal = ghz;
        if (s <= kQosMs)
            minGhzClone = ghz;
    }
    std::printf("\nLowest QoS-safe frequency: original %.1f GHz, "
                "clone %.1f GHz\n",
                minGhzOriginal, minGhzClone);
    std::printf("The provider never shared a line of Redis "
                "configuration or code.\n");
    return 0;
}
