/**
 * @file
 * Quickstart: clone your first service in ~60 lines.
 *
 * The workflow every Ditto user follows:
 *   1. deploy the (opaque) original service on a machine model,
 *   2. drive it with a representative load,
 *   3. call cloneService() -- profiling, skeleton analysis, body
 *      generation, and fine tuning happen automatically,
 *   4. deploy the returned ServiceSpec anywhere and compare.
 */

#include <cstdio>

#include "core/ditto.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

using namespace ditto;

// A toy key-value service standing in for "your production binary".
// Ditto never looks inside this function's output -- only at runtime
// observations.
static app::ServiceSpec
myProductionService()
{
    app::ServiceSpec spec;
    spec.name = "kvstore";
    spec.serverModel = app::ServerModel::IoMultiplex;
    spec.threads.workers = 2;

    hw::BlockSpec lookup;
    lookup.label = "kvstore.lookup";
    lookup.instCount = 300;
    lookup.mix = hw::MixWeights::hashCode();
    lookup.memFraction = 0.3;
    lookup.streams = {{8u << 20, hw::StreamKind::PointerChase, true, 1}};
    lookup.seed = 7;
    spec.blocks.push_back(hw::buildBlock(lookup));

    app::EndpointSpec get;
    get.name = "get";
    get.responseBytesMin = 256;
    get.responseBytesMax = 1024;
    get.handler.ops = {
        app::opCall("lookup", {{app::opCompute(0, 10, 20)}}),
    };
    spec.endpoints.push_back(get);
    return spec;
}

int
main()
{
    // 1. Deploy the original on a Platform A machine model.
    app::Deployment dep(/*seed=*/1);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &original =
        dep.deploy(myProductionService(), machine);
    dep.wireAll();

    // 2. Drive it with a representative load.
    workload::LoadSpec load;
    load.qps = 4000;
    load.connections = 8;
    workload::LoadGen gen(dep, original, load, /*seed=*/2);
    gen.start();

    // 3. Clone it. This profiles the running service (instruction
    //    mix, working sets, branches, dependencies, syscalls, thread
    //    model), generates a synthetic spec, and fine-tunes it.
    std::printf("Profiling and cloning 'kvstore'...\n");
    const core::CloneResult clone = core::cloneService(
        dep, original, load, hw::platformA());
    std::printf("  -> clone '%s': %zu synthetic blocks, "
                "%u tuning iterations, final IPC error %.1f%%\n",
                clone.spec.name.c_str(), clone.spec.blocks.size(),
                clone.tuning.iterations,
                clone.tuning.finalIpcError * 100);

    // 4. Deploy the clone in a fresh world and compare counters.
    app::Deployment cloneDep(/*seed=*/3);
    os::Machine &cloneMachine =
        cloneDep.addMachine("node0", hw::platformA());
    app::ServiceInstance &synthetic =
        cloneDep.deploy(clone.spec, cloneMachine);
    cloneDep.wireAll();
    workload::LoadGen cloneGen(cloneDep, synthetic,
                               core::cloneLoadSpec(load), 2);
    cloneGen.start();

    auto measure = [](app::Deployment &d, app::ServiceInstance &svc,
                      workload::LoadGen &g) {
        d.runFor(sim::milliseconds(200));
        d.beginMeasureAll();
        g.beginMeasure();
        d.runFor(sim::milliseconds(300));
        auto report = profile::snapshotService(svc);
        profile::overrideLatency(report, g.latency());
        return report;
    };
    const profile::PerfReport orig = measure(dep, original, gen);
    const profile::PerfReport synth =
        measure(cloneDep, synthetic, cloneGen);

    std::printf("\n%-22s %12s %12s\n", "metric", "original",
                "synthetic");
    auto row = [](const char *name, double a, double b) {
        std::printf("%-22s %12.3f %12.3f\n", name, a, b);
    };
    row("IPC", orig.ipc, synth.ipc);
    row("branch mispredict", orig.branchMispredictRate,
        synth.branchMispredictRate);
    row("L1d miss rate", orig.l1dMissRate, synth.l1dMissRate);
    row("avg latency (ms)", orig.avgLatencyMs, synth.avgLatencyMs);
    row("p99 latency (ms)", orig.p99LatencyMs, synth.p99LatencyMs);
    std::printf("\nThe synthetic spec contains no trace of the "
                "original's code -- share it freely.\n");
    return 0;
}
