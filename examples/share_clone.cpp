/**
 * @file
 * Example: share a clone as a file artifact.
 *
 * The provider clones a service and writes the synthetic spec to
 * disk; the consumer (a hardware vendor, say) loads the file in a
 * completely separate context and runs studies on it. The file
 * contains only the generated artifacts -- synthetic instruction
 * blocks, working-set descriptors, quantized branch behaviours,
 * syscall ops -- never the original's code or inputs.
 */

#include <cstdio>

#include "core/ditto.h"
#include "core/spec_io.h"
#include "hw/block_builder.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

using namespace ditto;

static app::ServiceSpec
proprietaryService()
{
    app::ServiceSpec spec;
    spec.name = "prod-secret";
    spec.threads.workers = 2;
    hw::BlockSpec bs;
    bs.label = "prod-secret.logic";
    bs.instCount = 400;
    bs.mix = hw::MixWeights::serverCode();
    bs.memFraction = 0.3;
    bs.branchFraction = 0.12;
    bs.streams = {{2u << 20, hw::StreamKind::Random, true, 1.0}};
    bs.seed = 99;
    spec.blocks.push_back(hw::buildBlock(bs));
    app::EndpointSpec ep;
    ep.name = "api";
    ep.handler.ops = {app::opCall("handle", {{app::opCompute(0, 8, 16)}})};
    ep.responseBytesMin = 256;
    ep.responseBytesMax = 768;
    spec.endpoints.push_back(ep);
    return spec;
}

int
main()
{
    const std::string path = "/tmp/prod-secret.clone.dto";
    workload::LoadSpec load;
    load.qps = 3000;
    load.connections = 6;

    // ---- provider side -------------------------------------------------
    {
        app::Deployment dep(1);
        os::Machine &m = dep.addMachine("prod-host", hw::platformA());
        app::ServiceInstance &svc =
            dep.deploy(proprietaryService(), m);
        dep.wireAll();
        workload::LoadGen gen(dep, svc, load, 2);
        gen.start();
        std::printf("[provider] cloning prod-secret...\n");
        const core::CloneResult clone =
            core::cloneService(dep, svc, load, hw::platformA());
        core::saveTopology(path, {clone.spec});
        std::printf("[provider] wrote %s\n", path.c_str());
        // Prove the artifact carries no original labels.
        const std::string text = core::specToString(clone.spec);
        std::printf("[provider] artifact mentions 'logic': %s, "
                    "'handle': %s\n",
                    text.find("logic") == std::string::npos ? "no"
                                                            : "YES",
                    text.find("handle") == std::string::npos ? "no"
                                                             : "YES");
    }

    // ---- consumer side (no access to proprietaryService()) ------------
    {
        const auto specs = core::loadTopology(path);
        std::printf("[consumer] loaded %zu spec(s): %s\n",
                    specs.size(), specs[0].name.c_str());
        app::Deployment dep(7);
        os::Machine &m = dep.addMachine("lab-host", hw::platformB());
        app::ServiceInstance &svc = dep.deploy(specs[0], m);
        dep.wireAll();
        workload::LoadGen gen(dep, svc, core::cloneLoadSpec(load), 2);
        gen.start();
        dep.runFor(sim::milliseconds(200));
        dep.beginMeasureAll();
        gen.beginMeasure();
        dep.runFor(sim::milliseconds(300));
        const auto report = profile::snapshotService(svc);
        std::printf("[consumer] ran the clone on Platform B: "
                    "IPC %.3f, L1d miss %.3f, p99 %.3f ms\n",
                    report.ipc, report.l1dMissRate,
                    sim::toMilliseconds(
                        gen.latency().percentile(0.99)));
        std::printf("[consumer] study done -- without ever seeing "
                    "the original.\n");
    }
    std::remove(path.c_str());
    return 0;
}
