/**
 * @file
 * Example: clone an entire microservice topology.
 *
 * Deploys the DeathStarBench-style Social Network (11 tiers), drives
 * it with a wrk2-style open-loop client, recovers the RPC dependency
 * graph from distributed traces, clones every tier, deploys the
 * all-synthetic topology, and compares per-tier and end-to-end
 * behaviour (the paper's Fig. 6 workflow).
 */

#include <cstdio>

#include "apps/catalog.h"
#include "core/ditto.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

using namespace ditto;

int
main()
{
    const auto load = apps::socialNetworkLoad();

    // ---- 1. deploy and drive the original topology ------------------
    app::Deployment dep(21);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &frontend =
        apps::deploySocialNetwork(dep, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, frontend, load.at(load.mediumQps), 5);
    gen.start();
    dep.runFor(sim::milliseconds(150));

    // ---- 2. clone every tier ------------------------------------------
    std::printf("Cloning the Social Network topology...\n");
    std::vector<std::string> tierNames;
    for (const auto &tier : apps::socialNetworkSpecs())
        tierNames.push_back(tier.name);
    core::CloneOptions opts;
    opts.fineTune = false;
    opts.profiling.warmup = sim::milliseconds(40);
    opts.profiling.window = sim::milliseconds(80);
    const core::TopologyCloneResult clone = core::cloneTopology(
        dep, tierNames, load.connections, opts);

    std::printf("Recovered DAG: root=%s, %zu services, %zu edges\n",
                clone.topology.root.c_str(),
                clone.topology.services.size(),
                clone.topology.edges.size());
    for (const auto &edge : clone.topology.edges) {
        std::printf("  %-18s -> %-18s %.2f calls/req (%0.0fB/%0.0fB)\n",
                    edge.caller.c_str(), edge.callee.c_str(),
                    edge.callsPerCallerRequest, edge.avgRequestBytes,
                    edge.avgResponseBytes);
    }

    // ---- 3. deploy the all-synthetic topology --------------------------
    app::Deployment synthDep(22);
    os::Machine &synthMachine =
        synthDep.addMachine("node0", hw::platformA());
    for (const auto &spec : clone.specs)
        synthDep.deploy(spec, synthMachine);
    synthDep.wireAll();
    app::ServiceInstance *synthFrontend =
        synthDep.find(clone.rootClone);
    workload::LoadGen synthGen(
        synthDep, *synthFrontend,
        core::cloneLoadSpec(load.at(load.mediumQps)), 5);
    synthGen.start();

    // ---- 4. compare ------------------------------------------------------
    auto window = [](app::Deployment &d, workload::LoadGen &g) {
        d.runFor(sim::milliseconds(200));
        d.beginMeasureAll();
        g.beginMeasure();
        d.runFor(sim::milliseconds(300));
    };
    window(dep, gen);
    window(synthDep, synthGen);

    std::printf("\nEnd-to-end latency at %d QPS:\n",
                static_cast<int>(load.mediumQps));
    std::printf("  original : p50 %.2fms  p99 %.2fms  (%.0f req/s)\n",
                sim::toMilliseconds(gen.latency().percentile(0.5)),
                sim::toMilliseconds(gen.latency().percentile(0.99)),
                gen.achievedQps());
    std::printf("  synthetic: p50 %.2fms  p99 %.2fms  (%.0f req/s)\n",
                sim::toMilliseconds(
                    synthGen.latency().percentile(0.5)),
                sim::toMilliseconds(
                    synthGen.latency().percentile(0.99)),
                synthGen.achievedQps());

    std::printf("\nPer-tier IPC (original vs clone):\n");
    for (const char *tier : {"sn.text", "sn.socialgraph",
                             "sn.poststorage", "sn.hometimeline"}) {
        app::ServiceInstance *o = dep.find(tier);
        app::ServiceInstance *s =
            synthDep.find(std::string(tier) + "_clone");
        if (!o || !s)
            continue;
        std::printf("  %-18s %.3f vs %.3f\n", tier,
                    profile::snapshotService(*o).ipc,
                    profile::snapshotService(*s).ipc);
    }
    std::printf("\nThe synthetic topology can be shared without "
                "revealing any tier's implementation.\n");
    return 0;
}
