/**
 * @file
 * Example: clone Memcached and validate the clone on loads it was
 * never profiled at.
 *
 * Demonstrates the paper's portability claim in miniature: profile
 * once at medium load, then sweep the offered QPS and show original
 * and synthetic tracking each other -- metrics *and* latency -- with
 * no reprofiling.
 */

#include <cstdio>

#include "apps/catalog.h"
#include "core/ditto.h"
#include "hw/platform.h"
#include "profile/perf_report.h"
#include "workload/loadgen.h"

using namespace ditto;

namespace {

profile::PerfReport
measureAt(const app::ServiceSpec &spec, const workload::LoadSpec &load)
{
    app::Deployment dep(11);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(spec, machine);
    dep.wireAll();
    workload::LoadGen gen(dep, svc, load, 5);
    gen.start();
    dep.runFor(sim::milliseconds(200));
    dep.beginMeasureAll();
    gen.beginMeasure();
    dep.runFor(sim::milliseconds(300));
    auto report = profile::snapshotService(svc);
    profile::overrideLatency(report, gen.latency());
    return report;
}

} // namespace

int
main()
{
    const app::ServiceSpec original = apps::memcachedSpec();
    const apps::AppLoad load = apps::memcachedLoad();

    // Profile + clone at medium load only.
    std::printf("Cloning Memcached (profiled at %d QPS only)...\n",
                static_cast<int>(load.mediumQps));
    app::Deployment dep(10);
    os::Machine &machine = dep.addMachine("node0", hw::platformA());
    app::ServiceInstance &svc = dep.deploy(original, machine);
    dep.wireAll();
    const workload::LoadSpec profilingLoad = load.at(load.mediumQps);
    workload::LoadGen gen(dep, svc, profilingLoad, 5);
    gen.start();
    const core::CloneResult clone = core::cloneService(
        dep, svc, profilingLoad, hw::platformA());
    std::printf("Skeleton inferred: %u epoll workers, %zu background "
                "thread group(s); tuned in %u iterations.\n\n",
                clone.skeleton.workers,
                clone.skeleton.background.size(),
                clone.tuning.iterations);

    // Sweep loads the clone has never seen.
    std::printf("%8s | %8s %8s | %8s %8s | %10s %10s\n", "QPS",
                "IPC(A)", "IPC(S)", "LLC(A)", "LLC(S)", "p99ms(A)",
                "p99ms(S)");
    for (double qps : {load.lowQps, load.mediumQps, load.highQps}) {
        const auto a = measureAt(original, load.at(qps));
        const auto s = measureAt(
            clone.spec, core::cloneLoadSpec(load.at(qps)));
        std::printf("%8.0f | %8.3f %8.3f | %8.3f %8.3f | %10.3f "
                    "%10.3f\n",
                    qps, a.ipc, s.ipc, a.llcMissRate, s.llcMissRate,
                    a.p99LatencyMs, s.p99LatencyMs);
    }
    std::printf("\nThe clone reacts to load changes without "
                "reprofiling -- the paper's Fig. 5 property.\n");
    return 0;
}
